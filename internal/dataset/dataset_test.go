package dataset

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"retrasyn/internal/grid"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

func testGrid() *grid.System {
	return grid.MustNew(4, spatial.Bounds{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
}

// testDataset covers overlapping spans, a single-point stream, a stream
// running to the end of the timeline, and an empty timestamp.
func testDataset() *trajectory.Dataset {
	return &trajectory.Dataset{
		Name: "golden",
		T:    6,
		Trajs: []trajectory.CellTrajectory{
			{Start: 0, Cells: []spatial.Cell{0, 1, 5}},
			{Start: 1, Cells: []spatial.Cell{10, 11, 15, 15}},
			{Start: 0, Cells: []spatial.Cell{7}},
			{Start: 5, Cells: []spatial.Cell{3}},
		},
	}
}

// TestWriteDatasetReadRoundTrip is the loader golden: a dataset written as
// a transition stream reads back into exactly the event stream (and active
// counts) the engine would have consumed directly.
func TestWriteDatasetReadRoundTrip(t *testing.T) {
	d := testDataset()
	sp := testGrid()
	dom := transition.NewDomain(sp)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d, sp); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.T() != d.T || rd.Name() != d.Name {
		t.Fatalf("header T=%d name=%q, want T=%d name=%q", rd.T(), rd.Name(), d.T, d.Name)
	}
	ref := trajectory.NewStream(d)
	for ts := 0; ts < d.T; ts++ {
		b, err := rd.Next()
		if err != nil {
			t.Fatalf("t=%d: %v", ts, err)
		}
		if b.T != ts {
			t.Fatalf("batch timestamp %d, want %d", b.T, ts)
		}
		if b.Active() != ref.Active[ts] {
			t.Fatalf("t=%d: active %d, want %d", ts, b.Active(), ref.Active[ts])
		}
		events, skipped := b.Events(sp, dom)
		if skipped != 0 {
			t.Fatalf("t=%d: %d events skipped on a same-discretizer round trip", ts, skipped)
		}
		want := ref.At(ts)
		if len(events) != len(want) {
			t.Fatalf("t=%d: %d events, want %d", ts, len(events), len(want))
		}
		for i := range events {
			if events[i] != want[i] {
				t.Fatalf("t=%d event %d: %+v, want %+v", ts, i, events[i], want[i])
			}
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after last batch: err = %v, want io.EOF", err)
	}
}

// TestEventsSkipsOutOfDomain checks the robustness path for files produced
// under a different discretization: a movement between non-adjacent cells
// is counted and skipped, not passed to the engine.
func TestEventsSkipsOutOfDomain(t *testing.T) {
	sp := testGrid()
	dom := transition.NewDomain(sp)
	x0, y0 := sp.Center(0)
	x15, y15 := sp.Center(15)
	b := &Batch{T: 0, Transitions: []Transition{
		{X1: x0, Y1: y0, X2: x15, Y2: y15, Flag: Move, User: 1}, // corner to corner: non-adjacent
		{X1: x0, Y1: y0, X2: x0, Y2: y0, Flag: Enter, User: 2},
	}}
	events, skipped := b.Events(sp, dom)
	if skipped != 1 || len(events) != 1 {
		t.Fatalf("skipped=%d events=%d, want 1 and 1", skipped, len(events))
	}
	if events[0].User != 2 || events[0].State.Kind != transition.Enter {
		t.Fatalf("surviving event %+v, want user 2's enter", events[0])
	}
	// Without a domain nothing is filtered.
	events, skipped = b.Events(sp, nil)
	if skipped != 0 || len(events) != 2 {
		t.Fatalf("unfiltered: skipped=%d events=%d, want 0 and 2", skipped, len(events))
	}
}

func TestXZRoundTrip(t *testing.T) {
	if err := XZAvailable(); err != nil {
		t.Skip(err)
	}
	d := testDataset()
	sp := testGrid()
	path := filepath.Join(t.TempDir(), TransitionFileName(d.Name, true))
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(w, d, sp); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The compressed payload must round-trip to the identical plain stream.
	var plain bytes.Buffer
	if err := WriteDataset(&plain, d, sp); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain.Bytes()) {
		t.Fatalf("xz round trip differs: %d bytes vs %d", len(got), plain.Len())
	}
}

// TestCorruptXZ corrupts a valid archive mid-stream and checks that the
// failure is loud: either the parser reports truncation or Close reports
// the decoder error — never a silently shorter dataset.
func TestCorruptXZ(t *testing.T) {
	if err := XZAvailable(); err != nil {
		t.Skip(err)
	}
	d := testDataset()
	sp := testGrid()
	path := filepath.Join(t.TempDir(), "golden_transition_id.xz")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(w, d, sp); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string][]byte{
		"truncated": raw[:len(raw)/2],
		"flipped":   flipByte(raw, len(raw)/2),
	} {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad_transition_id.xz")
			if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(bad)
			if err != nil {
				t.Fatal(err)
			}
			parseErr := ReadTransitionStream(r, func(*Batch) error { return nil })
			closeErr := r.Close()
			if parseErr == nil && closeErr == nil {
				t.Fatal("corrupt archive read back clean")
			}
		})
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

func TestOpenUncompressedMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want error for a missing file")
	}
}

func TestReaderErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "T,5,x\n@0\n",
		"bad T":            "TID,zero,x\n",
		"zero T":           "TID,0,x\n",
		"missing marker":   "TID,2,x\n1,1,1,1,0,0\n",
		"out of order":     "TID,3,x\n@0\n@2\n",
		"beyond timeline":  "TID,1,x\n@0\n@1\n",
		"negative marker":  "TID,2,x\n@-1\n",
		"truncated":        "TID,3,x\n@0\n@1\n",
		"short tuple":      "TID,1,x\n@0\n1,1,1,1,0\n",
		"long tuple":       "TID,1,x\n@0\n1,1,1,1,0,0,0\n",
		"bad coord":        "TID,1,x\n@0\nzz,1,1,1,0,0\n",
		"nan coord":        "TID,1,x\n@0\nNaN,1,1,1,0,0\n",
		"inf coord":        "TID,1,x\n@0\n1,+Inf,1,1,0,0\n",
		"bad flag":         "TID,1,x\n@0\n1,1,1,1,3,0\n",
		"non-numeric flag": "TID,1,x\n@0\n1,1,1,1,move,0\n",
		"negative user":    "TID,1,x\n@0\n1,1,1,1,0,-5\n",
		"trailing content": "TID,1,x\n@0\n1,1,1,1,0,0\nextra\n",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			err := ReadTransitionStream(strings.NewReader(input), func(*Batch) error { return nil })
			if err == nil {
				t.Fatalf("input %q parsed clean", input)
			}
		})
	}
}

func TestReaderErrorIsSticky(t *testing.T) {
	rd, err := NewReader(strings.NewReader("TID,2,x\n@0\nbad\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, err1 := rd.Next()
	_, err2 := rd.Next()
	if err1 == nil || err2 == nil {
		t.Fatalf("want sticky error, got %v then %v", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("error not sticky: %v vs %v", err1, err2)
	}
}

func TestReaderCallbackErrorStops(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataset(&buf, testDataset(), testGrid()); err != nil {
		t.Fatal(err)
	}
	sentinel := fmt.Errorf("stop")
	calls := 0
	err := ReadTransitionStream(&buf, func(*Batch) error {
		calls++
		if calls == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || calls != 2 {
		t.Fatalf("err=%v calls=%d, want sentinel after 2 calls", err, calls)
	}
}

func TestWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0, "x"); err == nil {
		t.Fatal("want error for zero timeline")
	}
	if _, err := NewWriter(&buf, 1, "a\nb"); err == nil {
		t.Fatal("want error for a name with a line break")
	}
	w, err := NewWriter(&buf, 2, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(1, nil); err == nil {
		t.Fatal("want error for an out-of-order batch")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("want error flushing an incomplete stream")
	}
	if err := w.WriteBatch(0, []Transition{{Flag: 9, User: 0}}); err == nil {
		t.Fatal("want error for an invalid flag")
	}
	if err := w.WriteBatch(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBatch(2, nil); err == nil {
		t.Fatal("want error for a batch beyond the timeline")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionFileName(t *testing.T) {
	if got := TransitionFileName("tdrive", true); got != "tdrive_transition_id.xz" {
		t.Fatalf("got %q", got)
	}
	if got := TransitionFileName("tdrive", false); got != "tdrive_transition_id" {
		t.Fatalf("got %q", got)
	}
	if !IsXZPath("a/b/tdrive_transition_id.xz") || IsXZPath("tdrive_transition_id") {
		t.Fatal("IsXZPath misclassifies")
	}
}
