package dataset

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
)

// xz plumbing. The Go standard library has no xz codec and this module
// carries no dependencies, so .xz paths are piped through the system xz
// binary as a subprocess — the same binary that produced the reference
// datasets. Uncompressed paths (no .xz suffix) bypass the subprocess
// entirely, so nothing below requires xz unless a compressed file is
// actually touched.

// IsXZPath reports whether path names an xz-compressed file.
func IsXZPath(path string) bool { return strings.HasSuffix(path, ".xz") }

// XZAvailable reports whether the system xz binary is on PATH; it is the
// gate Open/Create apply before spawning the subprocess, exposed so
// commands can fail fast with a clear message.
func XZAvailable() error {
	if _, err := exec.LookPath("xz"); err != nil {
		return fmt.Errorf("dataset: xz binary not found on PATH (required for .xz paths; use an uncompressed path without the suffix instead): %w", err)
	}
	return nil
}

// Open opens a transition-stream file for reading, decompressing through
// `xz -dc` when the path ends in .xz. The returned ReadCloser must be
// closed, and its Close error checked: for compressed paths Close reaps the
// subprocess and is where a corrupt or truncated archive surfaces.
func Open(path string) (io.ReadCloser, error) {
	if !IsXZPath(path) {
		return os.Open(path)
	}
	if err := XZAvailable(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("xz", "-q", "-dc")
	cmd.Stdin = f
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: starting xz -dc: %w", err)
	}
	return &xzReader{out: out, cmd: cmd, file: f, stderr: &stderr}, nil
}

type xzReader struct {
	out    io.ReadCloser
	cmd    *exec.Cmd
	file   *os.File
	stderr *bytes.Buffer
}

func (r *xzReader) Read(p []byte) (int, error) { return r.out.Read(p) }

func (r *xzReader) Close() error {
	r.out.Close()
	werr := r.cmd.Wait()
	cerr := r.file.Close()
	if werr != nil {
		if msg := strings.TrimSpace(r.stderr.String()); msg != "" {
			return fmt.Errorf("dataset: xz -dc: %s", msg)
		}
		return fmt.Errorf("dataset: xz -dc: %w", werr)
	}
	return cerr
}

// Create opens a transition-stream file for writing, compressing through
// `xz -c` when the path ends in .xz. Close flushes the compressor and is
// where compression failures surface; callers must check it. Compression
// runs at a fast preset — these are bulk exports, and level 2 already
// shrinks the highly repetitive tuple text by an order of magnitude.
func Create(path string) (io.WriteCloser, error) {
	if !IsXZPath(path) {
		return os.Create(path)
	}
	if err := XZAvailable(); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("xz", "-q", "-zc", "-2")
	cmd.Stdout = f
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataset: starting xz -zc: %w", err)
	}
	return &xzWriter{in: in, cmd: cmd, file: f, stderr: &stderr}, nil
}

type xzWriter struct {
	in     io.WriteCloser
	cmd    *exec.Cmd
	file   *os.File
	stderr *bytes.Buffer
}

func (w *xzWriter) Write(p []byte) (int, error) { return w.in.Write(p) }

func (w *xzWriter) Close() error {
	w.in.Close()
	werr := w.cmd.Wait()
	cerr := w.file.Close()
	if werr != nil {
		if msg := strings.TrimSpace(w.stderr.String()); msg != "" {
			return fmt.Errorf("dataset: xz -zc: %s", msg)
		}
		return fmt.Errorf("dataset: xz -zc: %w", werr)
	}
	return cerr
}
