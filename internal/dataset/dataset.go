// Package dataset reads and writes the RetraSyn on-disk dataset format: the
// `{name}_transition_id.xz` transition streams the reference implementation
// ships for T-Drive (3.1M points), Oldenburg (15.6M) and SanJoaquin (55.8M
// points, 1M users). A file holds, per discrete timestamp, a list of
// 6-tuples (x1, y1, x2, y2, flag, user) where flag 0/1/2 marks a movement,
// entering or quitting transition in continuous coordinates and user is the
// stream's stable identifier.
//
// The reference files are pickled Python lists; this package uses the same
// logical content in a line-oriented text encoding (one tuple per line,
// `@t` timestamp markers, a `TID,<T>,<name>` header) so the streams stay
// greppable, diffable and fuzzable:
//
//	TID,<T>,<name>
//	@0
//	x1,y1,x2,y2,flag,user
//	...
//	@1
//	...
//
// Every timestamp in [0, T) appears exactly once, in order, so a reader can
// replay the stream against a live curator without ever materializing more
// than one timestamp — the property that makes SanJoaquin-scale replays fit
// in bounded memory. Paths ending in .xz are transparently piped through the
// system xz binary on both read and write.
package dataset

import (
	"math"

	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Flag discriminates the three transition families on disk, numbered as the
// reference implementation numbers them.
type Flag int

// The wire flag values (reference convention: 0 move, 1 enter, 2 quit).
const (
	Move  Flag = 0
	Enter Flag = 1
	Quit  Flag = 2
)

// Transition is one on-disk 6-tuple: a transition from (X1, Y1) to (X2, Y2)
// in continuous coordinates by user User. For Enter both points are the
// entering location; for Quit both are the final location.
type Transition struct {
	X1, Y1, X2, Y2 float64
	Flag           Flag
	User           int
}

// valid reports structural validity: a known flag, a non-negative user and
// finite coordinates (NaN/Inf would silently corrupt discretization).
func (tr Transition) valid() bool {
	if tr.Flag < Move || tr.Flag > Quit || tr.User < 0 {
		return false
	}
	for _, v := range [4]float64{tr.X1, tr.Y1, tr.X2, tr.Y2} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// FromEvent converts an engine event into its on-disk tuple using the cell
// centers of sp as the continuous coordinates. Centers round-trip to the
// same cell under the originating discretizer, so a stream written this way
// replays to the exact cell transitions it came from.
func FromEvent(ev trajectory.Event, sp spatial.Discretizer) Transition {
	tr := Transition{User: ev.User}
	switch ev.State.Kind {
	case transition.Move:
		tr.Flag = Move
		tr.X1, tr.Y1 = sp.Center(ev.State.From)
		tr.X2, tr.Y2 = sp.Center(ev.State.To)
	case transition.Enter:
		tr.Flag = Enter
		tr.X1, tr.Y1 = sp.Center(ev.State.To)
		tr.X2, tr.Y2 = tr.X1, tr.Y1
	case transition.Quit:
		tr.Flag = Quit
		tr.X1, tr.Y1 = sp.Center(ev.State.From)
		tr.X2, tr.Y2 = tr.X1, tr.Y1
	}
	return tr
}

// Batch is one timestamp's worth of transitions, in file order.
type Batch struct {
	T           int
	Transitions []Transition
}

// Active returns the publicly known active-user count the batch implies:
// users moving or entering have a location at T, quitting users do not.
func (b *Batch) Active() int {
	n := 0
	for _, tr := range b.Transitions {
		if tr.Flag != Quit {
			n++
		}
	}
	return n
}

// Events discretizes the batch into engine events under sp. When dom is
// non-nil, transitions whose state falls outside the domain (a movement
// between non-adjacent cells — possible when a file was produced under a
// different discretization) are skipped and counted rather than poisoning
// the round; the skipped count is returned alongside.
func (b *Batch) Events(sp spatial.Discretizer, dom *transition.Domain) ([]trajectory.Event, int) {
	events := make([]trajectory.Event, 0, len(b.Transitions))
	skipped := 0
	for _, tr := range b.Transitions {
		var st transition.State
		switch tr.Flag {
		case Move:
			st = transition.MoveState(sp.CellOf(tr.X1, tr.Y1), sp.CellOf(tr.X2, tr.Y2))
		case Enter:
			st = transition.EnterState(sp.CellOf(tr.X2, tr.Y2))
		case Quit:
			st = transition.QuitState(sp.CellOf(tr.X1, tr.Y1))
		}
		if dom != nil {
			if _, ok := dom.Index(st); !ok {
				skipped++
				continue
			}
		}
		events = append(events, trajectory.Event{User: tr.User, State: st})
	}
	return events, skipped
}

// TransitionFileName returns the reference implementation's file name for a
// dataset's transition-id stream: `{name}_transition_id.xz`, or the same
// without the suffix for an uncompressed stream.
func TransitionFileName(name string, compressed bool) string {
	if compressed {
		return name + "_transition_id.xz"
	}
	return name + "_transition_id"
}
