package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTransitionStream feeds arbitrary bytes through the streaming
// parser. Invariants: no panic, and anything that parses clean must
// round-trip — re-writing the parsed batches and re-parsing yields the
// identical batches, so the parser and writer agree on the format.
func FuzzReadTransitionStream(f *testing.F) {
	seeds := []string{
		"TID,2,golden\n@0\n0.125,0.125,0.375,0.125,0,7\n@1\n0.375,0.125,0.375,0.125,2,7\n",
		"TID,1,x\n@0\n",
		"TID,3,with,comma\n@0\n@1\n1,1,1,1,1,0\n@2\n",
		"TID,1\n@0\n1.5e-3,2,3,4,0,0\n",
		"TID,2,trunc\n@0\n",
		"TID,1,bad\n@0\n1,1,1,1,9,0\n",
		"TID,1,neg\n@0\n1,1,1,1,0,-1\n",
		"TID,1,nan\n@0\nNaN,1,1,1,0,0\n",
		"TID,1,x\n@0\n@0\n",
		"T,5,wrongmagic\n@0\n",
		"",
		"TID,1,blank\n\n@0\n\n1,1,1,1,0,3\n\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var batches []*Batch
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		name, tlen := rd.Name(), rd.T()
		for {
			b, berr := rd.Next()
			if berr != nil {
				if len(batches) != 0 && berr.Error() == "" {
					t.Fatal("empty error message")
				}
				if berr.Error() == "EOF" && len(batches) != tlen {
					t.Fatalf("clean EOF after %d of %d batches", len(batches), tlen)
				}
				if berr.Error() != "EOF" {
					return
				}
				break
			}
			batches = append(batches, b)
		}
		if strings.ContainsAny(name, "\r\n") {
			return // line-trimming artifacts can't be re-serialized verbatim
		}
		// Round trip: write the parsed stream back and re-parse.
		var buf bytes.Buffer
		w, err := NewWriter(&buf, tlen, name)
		if err != nil {
			t.Fatalf("re-serializing a parsed stream: %v", err)
		}
		for _, b := range batches {
			if err := w.WriteBatch(b.T, b.Transitions); err != nil {
				t.Fatalf("re-writing batch %d: %v", b.T, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rd2, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing header: %v", err)
		}
		for i, want := range batches {
			got, err := rd2.Next()
			if err != nil {
				t.Fatalf("re-parsing batch %d: %v", i, err)
			}
			if got.T != want.T || len(got.Transitions) != len(want.Transitions) {
				t.Fatalf("batch %d: got t=%d n=%d, want t=%d n=%d", i, got.T, len(got.Transitions), want.T, len(want.Transitions))
			}
			for j := range want.Transitions {
				if got.Transitions[j] != want.Transitions[j] {
					t.Fatalf("batch %d tuple %d: %+v != %+v", i, j, got.Transitions[j], want.Transitions[j])
				}
			}
		}
	})
}
