package retrasyn

import (
	"bytes"
	"testing"
)

// quadtreeDataset discretizes a small skewed standard dataset with a
// density-adaptive quadtree grown from its own raw points (standing in for
// the public/historical sketch a deployment would use).
func quadtreeDataset(t *testing.T, maxLeaves int) (*Dataset, *Quadtree) {
	t.Helper()
	raw, bounds, err := StandardDataset("tdrive", 0.03, 11)
	if err != nil {
		t.Fatal(err)
	}
	qt, err := NewQuadtree(bounds, DensitySketch(raw), QuadtreeOptions{MaxLeaves: maxLeaves})
	if err != nil {
		t.Fatal(err)
	}
	return Discretize(raw, qt), qt
}

func TestFrameworkQuadtreeEndToEnd(t *testing.T) {
	orig, qt := quadtreeDataset(t, 24)
	fw, err := New(Options{
		Discretizer: qt,
		Epsilon:     1.0,
		Window:      10,
		Lambda:      orig.Stats().AvgLength,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, stats, err := fw.Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 {
		t.Fatal("no collection rounds")
	}
	if err := syn.Validate(qt, true); err != nil {
		t.Fatalf("quadtree release violates reachability: %v", err)
	}
}

func TestFrameworkQuadtreeSharded(t *testing.T) {
	orig, qt := quadtreeDataset(t, 24)
	fw, err := New(Options{
		Discretizer: qt,
		Epsilon:     1.0,
		Window:      10,
		Lambda:      orig.Stats().AvgLength,
		Shards:      3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, _, err := fw.Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Validate(qt, true); err != nil {
		t.Fatalf("sharded quadtree release violates reachability: %v", err)
	}
}

func TestFrameworkQuadtreeCheckpointRoundTrip(t *testing.T) {
	orig, qt := quadtreeDataset(t, 24)
	opts := Options{
		Discretizer: qt,
		Epsilon:     1.0,
		Window:      10,
		Lambda:      orig.Stats().AvgLength,
		Seed:        7,
	}
	run := func(fw *Framework, from, to int, events [][]Event, active []int) {
		for ts := from; ts < to; ts++ {
			if err := fw.ProcessTimestamp(events[ts], active[ts]); err != nil {
				t.Fatal(err)
			}
		}
	}
	events, active := datasetEvents(orig)

	full, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	run(full, 0, orig.T, events, active)
	want := full.Synthetic("qt")

	half := orig.T / 2
	donor, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	run(donor, 0, half, events, active)
	cp, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(opts, decoded)
	if err != nil {
		t.Fatal(err)
	}
	run(resumed, half, orig.T, events, active)
	got := resumed.Synthetic("qt")
	if len(got.Trajs) != len(want.Trajs) {
		t.Fatalf("resumed release has %d streams, want %d", len(got.Trajs), len(want.Trajs))
	}
	for i := range got.Trajs {
		if got.Trajs[i].Start != want.Trajs[i].Start || len(got.Trajs[i].Cells) != len(want.Trajs[i].Cells) {
			t.Fatalf("stream %d differs after restore", i)
		}
		for j := range got.Trajs[i].Cells {
			if got.Trajs[i].Cells[j] != want.Trajs[i].Cells[j] {
				t.Fatalf("stream %d cell %d differs after restore", i, j)
			}
		}
	}
}

// datasetEvents converts a dataset to per-timestamp framework inputs the
// same way Run does.
func datasetEvents(d *Dataset) ([][]Event, []int) {
	events := make([][]Event, d.T)
	for id, tr := range d.Trajs {
		if tr.Start >= 0 && tr.Start < d.T {
			events[tr.Start] = append(events[tr.Start], Event{User: id, State: EnterState(tr.Cells[0])})
		}
		for j := 1; j < len(tr.Cells); j++ {
			ts := tr.Start + j
			if ts >= 0 && ts < d.T {
				events[ts] = append(events[ts], Event{User: id, State: MoveState(tr.Cells[j-1], tr.Cells[j])})
			}
		}
		if qt := tr.End() + 1; qt < d.T {
			events[qt] = append(events[qt], Event{User: id, State: QuitState(tr.Cells[len(tr.Cells)-1])})
		}
	}
	return events, d.ActiveCounts()
}

func TestOptionsSpaceValidation(t *testing.T) {
	orig, qt := quadtreeDataset(t, 16)
	lambda := orig.Stats().AvgLength
	g, err := NewGrid(4, qt.Bounds())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Epsilon: 1, Window: 10, Lambda: lambda}); err == nil {
		t.Fatal("Options with no discretization accepted")
	}
	if _, err := New(Options{Grid: g, Discretizer: qt, Epsilon: 1, Window: 10, Lambda: lambda}); err == nil {
		t.Fatal("Options with both Grid and Discretizer accepted")
	}
	// Grid passed through the Discretizer field is fine — the grid is just
	// another backend.
	if _, err := New(Options{Discretizer: g, Epsilon: 1, Window: 10, Lambda: lambda}); err != nil {
		t.Fatalf("uniform grid rejected via Discretizer field: %v", err)
	}
}
