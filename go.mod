module retrasyn

go 1.22
