// Traffic monitoring: the paper's motivating application (§I). A stream of
// vehicles reports locations in real time; the curator never sees raw
// trajectories, yet continuously maintains a synthetic database from which
// it serves congestion queries — here, per-timestamp hotspot detection and
// a congestion alert when a district's synthetic density crosses a
// threshold.
//
// This example drives the production ingest layer (internal/service) the
// way a live deployment would: four regional gateways submit batched events
// concurrently, the Ingestor's per-timestamp barrier serializes them onto
// the engine, and halfway through the run the curator checkpoints itself,
// "crashes", and resumes from the checkpoint — the released stream is
// unaffected.
//
// Run with:
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"

	"retrasyn"
	"retrasyn/internal/service"
)

const (
	k         = 6
	window    = 20
	epsilon   = 1.0
	gateways  = 4    // concurrent regional feeds
	alertFrac = 0.12 // alert when one cell holds >12% of current vehicles
)

func main() {
	// A road-network city with steady commuter flow.
	net, err := retrasyn.GenerateRoadNetwork(24, retrasyn.Bounds{MaxX: 20, MaxY: 20}, 3)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := retrasyn.GenerateBrinkhoffLike(net, retrasyn.BrinkhoffConfig{
		T: 90, InitialUsers: 1200, NewUsersPerTs: 80, QuitProb: 1.0 / 40, Jitter: 0.1, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := retrasyn.NewGrid(k, retrasyn.Bounds{MaxX: 20, MaxY: 20})
	if err != nil {
		log.Fatal(err)
	}
	orig := retrasyn.Discretize(raw, g)

	opts := retrasyn.Options{
		Grid:    g,
		Epsilon: epsilon,
		Window:  window,
		Lambda:  orig.Stats().AvgLength,
		Seed:    5,
	}
	fw, err := retrasyn.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	// The device-side event feed: at each timestamp every present vehicle
	// holds exactly one transition state (enter / move / quit).
	events, active := retrasyn.NewStreamEvents(orig)

	fmt.Printf("monitoring %d timestamps of live traffic (ε=%.1f, w=%d, %d gateways)...\n\n",
		orig.T, epsilon, window, gateways)

	half := orig.T / 2
	in := service.New(fw, service.Options{})
	alerts := 0

	// First half of the stream, then checkpoint and "crash".
	ingest(in, events, active, 0, half)
	var cp *retrasyn.Checkpoint
	if err := in.Quiesce(func() error {
		var err error
		cp, err = fw.Snapshot()
		return err
	}); err != nil {
		log.Fatal(err)
	}
	reportWindow(fw, g, 0, half, &alerts)
	if err := in.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- t=%d: curator checkpointed (%d shard states) and stopped; restoring --\n\n", cp.T, len(cp.States))

	// A fresh process resumes from the checkpoint and ingests the rest.
	fw2, err := retrasyn.Restore(opts, cp)
	if err != nil {
		log.Fatal(err)
	}
	in2 := service.New(fw2, service.Options{})
	ingest(in2, events, active, half, orig.T)
	if err := in2.Close(); err != nil {
		log.Fatal(err)
	}
	reportWindow(fw2, g, half, orig.T, &alerts)

	st := in2.Stats()
	fmt.Printf("\n%d congestion alerts raised — all served from the private synthetic stream.\n", alerts)
	fmt.Printf("ingest after restore: %d batches, %d events, %d backpressure waits\n",
		st.BatchesAccepted, st.EventsAccepted, st.BackpressureWaits)

	// Sanity: how faithful was the live hotspot view?
	r := retrasyn.EvaluateUtility(orig, fw2.Synthetic("final"), g, retrasyn.UtilityOptions{Seed: 9})
	fmt.Printf("hotspot NDCG vs ground truth: %.3f (1.0 = perfect ranking)\n", r.HotspotNDCG)
}

// ingest fans timestamps [from, to) of the event stream into the ingestor
// from `gateways` concurrent producers, sealing each timestamp once every
// gateway has submitted its regional batch.
func ingest(in *service.Ingestor, events [][]retrasyn.Event, active []int, from, to int) {
	var wg sync.WaitGroup
	fanin := make([]atomic.Int32, len(events))
	for gw := 0; gw < gateways; gw++ {
		wg.Add(1)
		go func(gw int) {
			defer wg.Done()
			for ts := from; ts < to; ts++ {
				var batch []retrasyn.Event
				for i := gw; i < len(events[ts]); i += gateways {
					batch = append(batch, events[ts][i])
				}
				if err := in.Submit(ts, batch); err != nil {
					log.Fatal(err)
				}
				if fanin[ts].Add(1) == gateways {
					if err := in.Seal(ts, active[ts]); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(gw)
	}
	wg.Wait()
}

// reportWindow serves congestion queries from the synthetic database for
// timestamps [from, to).
func reportWindow(fw *retrasyn.Framework, g *retrasyn.Grid, from, to int, alerts *int) {
	syn := fw.Synthetic("live")
	for ts := from; ts < to; ts++ {
		if (ts+1)%15 != 0 {
			continue
		}
		counts := cellCountsAt(syn, ts, g)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		top := topCells(counts, 3)
		fmt.Printf("t=%2d | %4d vehicles | top districts:", ts, total)
		for _, tc := range top {
			row, col := g.RowCol(tc.cell)
			fmt.Printf("  (%d,%d)=%d", row, col, tc.count)
		}
		if float64(top[0].count) > alertFrac*float64(total) {
			fmt.Printf("  ⚠ congestion alert")
			*alerts++
		}
		fmt.Println()
	}
}

type cellCount struct {
	cell  retrasyn.Cell
	count int
}

func cellCountsAt(d *retrasyn.Dataset, ts int, g *retrasyn.Grid) map[retrasyn.Cell]int {
	counts := make(map[retrasyn.Cell]int, g.NumCells())
	for _, tr := range d.Trajs {
		if c, ok := tr.CellAt(ts); ok {
			counts[c]++
		}
	}
	return counts
}

func topCells(counts map[retrasyn.Cell]int, n int) []cellCount {
	all := make([]cellCount, 0, len(counts))
	for c, v := range counts {
		all = append(all, cellCount{c, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].cell < all[j].cell
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
