// Traffic monitoring: the paper's motivating application (§I). A stream of
// vehicles reports locations in real time; the curator never sees raw
// trajectories, yet continuously maintains a synthetic database from which
// it serves congestion queries — here, per-timestamp hotspot detection and
// a congestion alert when a district's synthetic density crosses a
// threshold.
//
// This example drives the streaming API directly (ProcessTimestamp), the
// way a live deployment would, rather than replaying a recorded dataset.
//
// Run with:
//
//	go run ./examples/trafficmonitor
package main

import (
	"fmt"
	"log"
	"sort"

	"retrasyn"
)

const (
	k         = 6
	window    = 20
	epsilon   = 1.0
	alertFrac = 0.12 // alert when one cell holds >12% of current vehicles
)

func main() {
	// A road-network city with steady commuter flow.
	net, err := retrasyn.GenerateRoadNetwork(24, retrasyn.Bounds{MaxX: 20, MaxY: 20}, 3)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := retrasyn.GenerateBrinkhoffLike(net, retrasyn.BrinkhoffConfig{
		T: 90, InitialUsers: 1200, NewUsersPerTs: 80, QuitProb: 1.0 / 40, Jitter: 0.1, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := retrasyn.NewGrid(k, retrasyn.Bounds{MaxX: 20, MaxY: 20})
	if err != nil {
		log.Fatal(err)
	}
	orig := retrasyn.Discretize(raw, g)

	fw, err := retrasyn.New(retrasyn.Options{
		Grid:    g,
		Epsilon: epsilon,
		Window:  window,
		Lambda:  orig.Stats().AvgLength,
		Seed:    5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The device-side event feed: at each timestamp every present vehicle
	// holds exactly one transition state (enter / move / quit).
	events, active := retrasyn.NewStreamEvents(orig)

	fmt.Printf("monitoring %d timestamps of live traffic (ε=%.1f, w=%d)...\n\n",
		orig.T, epsilon, window)
	alerts := 0
	for ts := range events {
		if err := fw.ProcessTimestamp(events[ts], active[ts]); err != nil {
			log.Fatal(err)
		}

		// Downstream analysis happens on the synthetic database only.
		if (ts+1)%15 != 0 {
			continue
		}
		syn := fw.Synthetic("live")
		counts := cellCountsAt(syn, ts, g)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		top := topCells(counts, 3)
		fmt.Printf("t=%2d | %4d vehicles | top districts:", ts, total)
		for _, tc := range top {
			row, col := g.RowCol(tc.cell)
			fmt.Printf("  (%d,%d)=%d", row, col, tc.count)
		}
		if float64(top[0].count) > alertFrac*float64(total) {
			fmt.Printf("  ⚠ congestion alert")
			alerts++
		}
		fmt.Println()
	}
	fmt.Printf("\n%d congestion alerts raised — all served from the private synthetic stream.\n", alerts)

	// Sanity: how faithful was the live hotspot view?
	r := retrasyn.EvaluateUtility(orig, fw.Synthetic("final"), g, retrasyn.UtilityOptions{Seed: 9})
	fmt.Printf("hotspot NDCG vs ground truth: %.3f (1.0 = perfect ranking)\n", r.HotspotNDCG)
}

type cellCount struct {
	cell  retrasyn.Cell
	count int
}

func cellCountsAt(d *retrasyn.Dataset, ts int, g *retrasyn.Grid) map[retrasyn.Cell]int {
	counts := make(map[retrasyn.Cell]int, g.NumCells())
	for _, tr := range d.Trajs {
		if c, ok := tr.CellAt(ts); ok {
			counts[c]++
		}
	}
	return counts
}

func topCells(counts map[retrasyn.Cell]int, n int) []cellCount {
	all := make([]cellCount, 0, len(counts))
	for c, v := range counts {
		all = append(all, cellCount{c, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].cell < all[j].cell
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
