// Historical analysis: the paper's §V-B "historical metrics" scenario. A
// full day of trajectory streams is privately released in real time; after
// the fact, an analyst runs trajectory-level studies — popular trips,
// travel-length distribution, location popularity ranking — on the released
// synthetic history, with no further privacy cost (post-processing).
//
// The example also contrasts RetraSyn with an LDP-IDS baseline (LPA) to
// show why entering/quitting modelling matters for trajectory-level tasks:
// the baseline's never-terminating streams destroy trip and length
// statistics even when its per-timestamp densities look reasonable.
//
// Run with:
//
//	go run ./examples/historical
package main

import (
	"fmt"
	"log"
	"sort"

	"retrasyn"
)

func main() {
	raw, bounds, err := retrasyn.StandardDataset("tdrive", 0.4, 17)
	if err != nil {
		log.Fatal(err)
	}
	g, err := retrasyn.NewGrid(6, bounds)
	if err != nil {
		log.Fatal(err)
	}
	orig := retrasyn.Discretize(raw, g)

	// Release the stream privately with RetraSyn.
	fw, err := retrasyn.New(retrasyn.Options{
		Grid: g, Epsilon: 1.0, Window: 20,
		Lambda: orig.Stats().AvgLength, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	retra, _, err := fw.Run(orig)
	if err != nil {
		log.Fatal(err)
	}

	// ...and with the LPA baseline for contrast.
	lpa, err := retrasyn.RunBaseline(orig, g, retrasyn.LPA, 1.0, 20, 23)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Top-5 trips (start→end cells, share of all streams) ===")
	fmt.Println("ground truth:        ", topTrips(orig, g, 5))
	fmt.Println("RetraSyn release:    ", topTrips(retra, g, 5))
	fmt.Println("LPA baseline release:", topTrips(lpa, g, 5))

	fmt.Println("\n=== Travel length distribution (share of streams per bucket) ===")
	fmt.Printf("%-22s %8s %8s %8s %8s\n", "", "1-5", "6-15", "16-40", ">40")
	fmt.Printf("%-22s %s\n", "ground truth", lengthBuckets(orig))
	fmt.Printf("%-22s %s\n", "RetraSyn release", lengthBuckets(retra))
	fmt.Printf("%-22s %s\n", "LPA baseline release", lengthBuckets(lpa))

	fmt.Println("\n=== Trajectory-level utility ===")
	fmt.Printf("%-22s %12s %12s %12s\n", "", "KendallTau↑", "TripError↓", "LengthErr↓")
	for _, row := range []struct {
		name string
		syn  *retrasyn.Dataset
	}{{"RetraSyn", retra}, {"LPA baseline", lpa}} {
		r := retrasyn.EvaluateUtility(orig, row.syn, g, retrasyn.UtilityOptions{Seed: 3})
		fmt.Printf("%-22s %12.4f %12.4f %12.4f\n", row.name, r.KendallTau, r.TripError, r.LengthError)
	}
	fmt.Println("\nA length error near ln2≈0.693 is the baseline's signature: its synthetic")
	fmt.Println("streams never terminate, so every trajectory-level statistic collapses.")
}

// topTrips formats the most frequent (start,end) cell pairs.
func topTrips(d *retrasyn.Dataset, g *retrasyn.Grid, n int) string {
	type trip struct {
		from, to retrasyn.Cell
	}
	counts := map[trip]int{}
	for _, tr := range d.Trajs {
		counts[trip{tr.Cells[0], tr.Cells[len(tr.Cells)-1]}]++
	}
	type kv struct {
		t trip
		c int
	}
	all := make([]kv, 0, len(counts))
	for t, c := range counts {
		all = append(all, kv{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].t.from*1000+all[i].t.to < all[j].t.from*1000+all[j].t.to
	})
	if len(all) > n {
		all = all[:n]
	}
	out := ""
	for _, e := range all {
		fr, fc := g.RowCol(e.t.from)
		tr, tc := g.RowCol(e.t.to)
		out += fmt.Sprintf(" (%d,%d)→(%d,%d) %.1f%%", fr, fc, tr, tc,
			100*float64(e.c)/float64(len(d.Trajs)))
	}
	return out
}

// lengthBuckets formats the stream-length distribution.
func lengthBuckets(d *retrasyn.Dataset) string {
	var b [4]int
	for _, tr := range d.Trajs {
		switch l := tr.Len(); {
		case l <= 5:
			b[0]++
		case l <= 15:
			b[1]++
		case l <= 40:
			b[2]++
		default:
			b[3]++
		}
	}
	total := float64(len(d.Trajs))
	return fmt.Sprintf("%7.1f%% %7.1f%% %7.1f%% %7.1f%%",
		100*float64(b[0])/total, 100*float64(b[1])/total,
		100*float64(b[2])/total, 100*float64(b[3])/total)
}
