// Quickstart: generate a small taxi-like trajectory stream, release it
// through RetraSyn under w-event ε-LDP, and evaluate the utility of the
// synthetic database.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"retrasyn"
)

func main() {
	// 1. Data: a synthetic taxi workload over a 30×30 city.
	raw, bounds, err := retrasyn.StandardDataset("tdrive", 0.2, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Discretize onto a 6×6 grid (the paper's default granularity).
	g, err := retrasyn.NewGrid(6, bounds)
	if err != nil {
		log.Fatal(err)
	}
	orig := retrasyn.Discretize(raw, g)
	stats := orig.Stats()
	fmt.Printf("original: %d streams, %d points, avg length %.1f, %d timestamps\n",
		stats.Size, stats.NumPoints, stats.AvgLength, stats.Timestamps)

	// 3. Private real-time synthesis: population division, adaptive
	//    allocation, ε=1.0 over windows of 20 timestamps.
	fw, err := retrasyn.New(retrasyn.Options{
		Grid:    g,
		Epsilon: 1.0,
		Window:  20,
		Lambda:  stats.AvgLength, // Eq. 8 termination factor
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	syn, runStats, err := fw.Run(orig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released: %d synthetic streams via %d collection rounds (%d user reports)\n",
		len(syn.Trajs), runStats.Rounds, runStats.TotalReports)

	// 4. Utility: the paper's eight metrics.
	r := retrasyn.EvaluateUtility(orig, syn, g, retrasyn.UtilityOptions{Seed: 1})
	fmt.Println("\nutility report (↓ = smaller better, ↑ = larger better):")
	fmt.Printf("  density error    ↓ %.4f\n", r.DensityError)
	fmt.Printf("  query error      ↓ %.4f\n", r.QueryError)
	fmt.Printf("  hotspot NDCG     ↑ %.4f\n", r.HotspotNDCG)
	fmt.Printf("  transition error ↓ %.4f\n", r.TransitionError)
	fmt.Printf("  pattern F1       ↑ %.4f\n", r.PatternF1)
	fmt.Printf("  kendall tau      ↑ %.4f\n", r.KendallTau)
	fmt.Printf("  trip error       ↓ %.4f\n", r.TripError)
	fmt.Printf("  length error     ↓ %.4f\n", r.LengthError)
}
