// Allocation strategy comparison: a miniature of the paper's Figure 3. The
// same stream is released under every allocation strategy × division
// combination, showing the trade-off the paper highlights: data-independent
// strategies (Sample) can win steady-state error metrics on smooth streams
// while collapsing on ranking fidelity, whereas the adaptive strategy is
// robust across metrics.
//
// Run with:
//
//	go run ./examples/strategies
package main

import (
	"fmt"
	"log"

	"retrasyn"
)

func main() {
	raw, bounds, err := retrasyn.StandardDataset("oldenburg", 0.4, 13)
	if err != nil {
		log.Fatal(err)
	}
	g, err := retrasyn.NewGrid(6, bounds)
	if err != nil {
		log.Fatal(err)
	}
	orig := retrasyn.Discretize(raw, g)
	lambda := orig.Stats().AvgLength

	type combo struct {
		label    string
		strategy string
		division retrasyn.Division
	}
	combos := []combo{
		{"adaptive/budget", retrasyn.StrategyAdaptive, retrasyn.BudgetDivision},
		{"adaptive/population", retrasyn.StrategyAdaptive, retrasyn.PopulationDivision},
		{"uniform/budget", retrasyn.StrategyUniform, retrasyn.BudgetDivision},
		{"uniform/population", retrasyn.StrategyUniform, retrasyn.PopulationDivision},
		{"sample", retrasyn.StrategySample, retrasyn.PopulationDivision},
	}

	fmt.Printf("releasing %d streams (%d timestamps) under ε=1.0, w=20…\n\n",
		len(orig.Trajs), orig.T)
	fmt.Printf("%-22s %12s %12s %12s %12s\n",
		"strategy", "Transition↓", "Query↓", "Kendall↑", "Rounds")
	for _, c := range combos {
		fw, err := retrasyn.New(retrasyn.Options{
			Grid:     g,
			Epsilon:  1.0,
			Window:   20,
			Division: c.division,
			Strategy: c.strategy,
			Lambda:   lambda,
			Seed:     29,
		})
		if err != nil {
			log.Fatal(err)
		}
		syn, stats, err := fw.Run(orig)
		if err != nil {
			log.Fatal(err)
		}
		r := retrasyn.EvaluateUtility(orig, syn, g, retrasyn.UtilityOptions{Seed: 3})
		fmt.Printf("%-22s %12.4f %12.4f %12.4f %12d\n",
			c.label, r.TransitionError, r.QueryError, r.KendallTau, stats.Rounds)
	}
	fmt.Println("\nNote how `sample` can score well on smooth-stream error metrics while")
	fmt.Println("its ranking fidelity (Kendall tau) degrades — the paper's Figure 3 story.")
}
