package retrasyn

// Benchmark of online adaptive re-discretization on the drifting-hotspot
// workload: a quadtree frozen at boot (grown from the opening window, as
// PR 3 deployments do) against the layout the relayout subsystem adapts to
// by sketching the engine's own released stream mid-run. Measured at equal ε
// and equal reporter count: the L1 error of a one-round OUE density estimate
// projected onto a fine reference grid — the spatial resolution the layout
// can actually deliver at the end of the stream — plus the transition-domain
// sizes.
//
//	go test -run TestRelayoutAdaptiveBeatsFrozen .
//
// RETRASYN_EMIT_BENCH=1 go test -run TestEmitBenchRelayoutJSON .
// re-measures everything and writes BENCH_relayout.json.

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"retrasyn/internal/ldp"
	"retrasyn/internal/spatial"
	"retrasyn/internal/transition"
)

const (
	relayoutBenchT   = 60
	relayoutBenchEps = 2.0
	// relayoutRefK is the reference-grid side for density projection.
	relayoutRefK = 64
)

func relayoutBenchWorkload() *RawDataset {
	raw, err := GenerateDriftingHotspot(DriftConfig{
		T:             relayoutBenchT,
		InitialUsers:  4000,
		ArrivalsPerTs: 300,
		MeanLength:    10,
		HotspotShare:  0.85,
		MaxX:          32, MaxY: 32,
		Seed: 20240601,
	})
	if err != nil {
		panic(err)
	}
	return raw
}

// relayoutBench prepares the frozen and adaptive layouts once: the frozen
// quadtree grows from the opening window's sketch; the adaptive layouts are
// whatever the real engine — sketching its own released synthetic stream —
// migrated onto by the end of the run, under the geometric trigger and under
// the degradation trigger (geometric OR monitor alarm). A stationary twin of
// the workload measures how often each trigger fires when nothing drifts.
var relayoutBench struct {
	once       sync.Once
	raw        *RawDataset
	frozen     *Quadtree
	adaptive   Discretizer
	gens       int
	degraded   Discretizer
	degradGens int
	stableGens map[TriggerPolicy]int
	err        error
}

func relayoutBenchOptions(boot *Quadtree, policy TriggerPolicy) Options {
	o := Options{
		Discretizer:       boot,
		Epsilon:           relayoutBenchEps,
		Window:            5,
		Strategy:          StrategySample,
		Lambda:            10,
		RediscretizeEvery: 2,
		RelayoutThreshold: 0.05,
		Seed:              20240715,
	}
	if policy != TriggerGeometric {
		o.TriggerPolicy = policy
		o.MonitorWindow = 5
	}
	return o
}

func relayoutAdaptiveRun(raw *RawDataset, boot *Quadtree, policy TriggerPolicy) (Discretizer, int, error) {
	fw, err := New(relayoutBenchOptions(boot, policy))
	if err != nil {
		return nil, 0, err
	}
	if _, _, err := fw.RunAdaptive(raw); err != nil {
		return nil, 0, err
	}
	return fw.Space(), fw.LayoutGeneration(), nil
}

func relayoutSetups(tb testing.TB) (raw *RawDataset, frozen *Quadtree, adaptive Discretizer, gens int) {
	relayoutBench.once.Do(func() {
		b := &relayoutBench
		b.raw = relayoutBenchWorkload()
		const warmup = 10
		var pts []Point
		for _, tr := range b.raw.Trajs {
			for i, p := range tr.Points {
				if tr.Start+i >= warmup {
					break
				}
				pts = append(pts, Point{X: p.X, Y: p.Y})
			}
		}
		b.frozen, b.err = NewQuadtree(Bounds{MaxX: 32, MaxY: 32}, pts,
			QuadtreeOptions{MaxLeaves: 32, MaxDepth: 5})
		if b.err != nil {
			return
		}
		if b.adaptive, b.gens, b.err = relayoutAdaptiveRun(b.raw, b.frozen, TriggerGeometric); b.err != nil {
			return
		}
		if b.degraded, b.degradGens, b.err = relayoutAdaptiveRun(b.raw, b.frozen, TriggerDegradationOr); b.err != nil {
			return
		}
		// The stationary twin: identical scale and hotspot geometry, but the
		// hotspot never moves, so a well-behaved trigger should leave the
		// layout alone.
		stable, err := GenerateDriftingHotspot(DriftConfig{
			T:             relayoutBenchT,
			InitialUsers:  4000,
			ArrivalsPerTs: 300,
			MeanLength:    10,
			HotspotShare:  0.85,
			DriftRate:     1e-9,
			MaxX:          32, MaxY: 32,
			Seed: 20240601,
		})
		if err != nil {
			b.err = err
			return
		}
		b.stableGens = map[TriggerPolicy]int{}
		for _, policy := range []TriggerPolicy{TriggerGeometric, TriggerDegradationOr} {
			if _, g, err := relayoutAdaptiveRun(stable, b.frozen, policy); err != nil {
				b.err = err
				return
			} else {
				b.stableGens[policy] = g
			}
		}
	})
	if relayoutBench.err != nil {
		tb.Fatal(relayoutBench.err)
	}
	return relayoutBench.raw, relayoutBench.frozen, relayoutBench.adaptive, relayoutBench.gens
}

// relayoutDegradationResults returns the degradation-or run's final layout
// and migration count on the drifting workload, plus each policy's migration
// count on the stationary twin.
func relayoutDegradationResults(tb testing.TB) (degraded Discretizer, degradGens int, stableGens map[TriggerPolicy]int) {
	relayoutSetups(tb)
	return relayoutBench.degraded, relayoutBench.degradGens, relayoutBench.stableGens
}

// latePositions returns every user's true position at the measured late
// timestamp — the population one collection round would report.
func latePositions(raw *RawDataset, ts int) []Point {
	var out []Point
	for _, tr := range raw.Trajs {
		i := ts - tr.Start
		if i >= 0 && i < len(tr.Points) {
			out = append(out, Point{X: tr.Points[i].X, Y: tr.Points[i].Y})
		}
	}
	return out
}

// occupancyRound runs one OUE round over the layout's cell-occupancy domain
// (each present user reports its current cell at budget eps) and returns the
// clamped per-cell frequency estimates.
func occupancyRound(space Discretizer, pts []Point, seed uint64) []float64 {
	rng := ldp.NewRand(seed, seed^0x5bd1e995)
	oracle := ldp.MustOUE(space.NumCells(), relayoutBenchEps)
	agg := ldp.NewAggregator(oracle)
	for _, p := range pts {
		agg.Add(oracle.Perturb(rng, int(space.CellOf(p.X, p.Y))))
	}
	est := agg.EstimateAll()
	for i, f := range est {
		if f < 0 {
			est[i] = 0
		}
	}
	return est
}

// refDensityL1 projects per-cell mass uniformly over each cell's box onto a
// relayoutRefK² reference grid and returns the L1 distance to the true point
// density — the spatial resolution error the layout imposes on an estimate.
func refDensityL1(space Discretizer, est []float64, truth []Point) float64 {
	boxed := space.(spatial.Boxed)
	b := space.Bounds()
	ref := make([]float64, relayoutRefK*relayoutRefK)
	cw, ch := b.Width()/relayoutRefK, b.Height()/relayoutRefK
	total := 0.0
	for _, f := range est {
		total += f
	}
	if total <= 0 {
		total = 1
	}
	for c := 0; c < space.NumCells(); c++ {
		mass := est[c] / total
		if mass == 0 {
			continue
		}
		box := boxed.CellBox(Cell(c))
		area := box.Area()
		c0 := int((box.MinX - b.MinX) / cw)
		r0 := int((box.MinY - b.MinY) / ch)
		c1 := int(math.Ceil((box.MaxX - b.MinX) / cw))
		r1 := int(math.Ceil((box.MaxY - b.MinY) / ch))
		for r := r0; r < r1 && r < relayoutRefK; r++ {
			for cc := c0; cc < c1 && cc < relayoutRefK; cc++ {
				refBox := spatial.Bounds{
					MinX: b.MinX + float64(cc)*cw, MinY: b.MinY + float64(r)*ch,
					MaxX: b.MinX + float64(cc+1)*cw, MaxY: b.MinY + float64(r)*ch + ch,
				}
				if inter, ok := box.Intersect(refBox); ok {
					ref[r*relayoutRefK+cc] += mass * inter.Area() / area
				}
			}
		}
	}
	truthRef := make([]float64, relayoutRefK*relayoutRefK)
	for _, p := range truth {
		col := int((p.X - b.MinX) / cw)
		row := int((p.Y - b.MinY) / ch)
		if col >= relayoutRefK {
			col = relayoutRefK - 1
		}
		if row >= relayoutRefK {
			row = relayoutRefK - 1
		}
		truthRef[row*relayoutRefK+col] += 1 / float64(len(truth))
	}
	l1 := 0.0
	for i := range ref {
		l1 += math.Abs(ref[i] - truthRef[i])
	}
	return l1
}

// relayoutL1 measures the mean reference-grid density L1 of one equal-ε
// round on the layout, over trials.
func relayoutL1(space Discretizer, pts []Point, trials int) float64 {
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += refDensityL1(space, occupancyRound(space, pts, uint64(i)*6364136223846793005+97), pts)
	}
	return sum / float64(trials)
}

// TestRelayoutAdaptiveBeatsFrozen pins the tentpole's promise: at the end of
// the drifting-hotspot stream, one equal-ε collection round on the layout
// the engine adapted to (from its own released stream) estimates the current
// density with lower L1 error than the same round on the boot-frozen layout.
func TestRelayoutAdaptiveBeatsFrozen(t *testing.T) {
	raw, frozen, adaptive, gens := relayoutSetups(t)
	if gens < 1 {
		t.Fatal("the adaptive engine never migrated — nothing to compare")
	}
	pts := latePositions(raw, relayoutBenchT-3)
	frozenL1 := relayoutL1(frozen, pts, 3)
	adaptiveL1 := relayoutL1(adaptive, pts, 3)
	t.Logf("late-round density L1: frozen %.4f, adaptive %.4f (%d migrations)", frozenL1, adaptiveL1, gens)
	if adaptiveL1 >= frozenL1 {
		t.Fatalf("adaptive layout L1 %.4f not below frozen %.4f", adaptiveL1, frozenL1)
	}
}

// TestRelayoutDegradationTrigger pins this PR's acceptance numbers: on the
// drifting workload the degradation-or trigger keeps late-round density error
// within the geometric trigger's (≤ 1.0×, the alarm leg only ever adds
// migrations the geometry already justifies), and on the stationary twin it
// fires no more relayouts than the geometric trigger does.
func TestRelayoutDegradationTrigger(t *testing.T) {
	raw, _, adaptive, gens := relayoutSetups(t)
	degraded, degradGens, stableGens := relayoutDegradationResults(t)
	if degradGens < 1 {
		t.Fatal("degradation-or never migrated on the drifting workload")
	}
	pts := latePositions(raw, relayoutBenchT-3)
	geoL1 := relayoutL1(adaptive, pts, 3)
	degL1 := relayoutL1(degraded, pts, 3)
	t.Logf("late-round density L1: geometric %.4f (%d migrations), degradation-or %.4f (%d migrations)",
		geoL1, gens, degL1, degradGens)
	if degL1 > geoL1 {
		t.Fatalf("degradation-or L1 %.4f exceeds geometric %.4f", degL1, geoL1)
	}
	t.Logf("stationary-twin migrations: geometric %d, degradation-or %d",
		stableGens[TriggerGeometric], stableGens[TriggerDegradationOr])
	if stableGens[TriggerDegradationOr] > stableGens[TriggerGeometric] {
		t.Fatalf("degradation-or fired %d relayouts on the stationary twin, geometric fired %d",
			stableGens[TriggerDegradationOr], stableGens[TriggerGeometric])
	}
}

// BenchmarkRelayoutRoundFrozen measures one occupancy round + projection on
// the frozen layout.
func BenchmarkRelayoutRoundFrozen(b *testing.B) {
	raw, frozen, _, _ := relayoutSetups(b)
	pts := latePositions(raw, relayoutBenchT-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refDensityL1(frozen, occupancyRound(frozen, pts, uint64(i)+1), pts)
	}
}

// BenchmarkRelayoutRoundAdaptive measures the identical round on the
// adapted layout.
func BenchmarkRelayoutRoundAdaptive(b *testing.B) {
	raw, _, adaptive, _ := relayoutSetups(b)
	pts := latePositions(raw, relayoutBenchT-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refDensityL1(adaptive, occupancyRound(adaptive, pts, uint64(i)+1), pts)
	}
}

// TestEmitBenchRelayoutJSON measures the relayout benchmark and writes
// BENCH_relayout.json. Gated behind RETRASYN_EMIT_BENCH so the regular
// suite stays fast.
func TestEmitBenchRelayoutJSON(t *testing.T) {
	if os.Getenv("RETRASYN_EMIT_BENCH") == "" {
		t.Skip("set RETRASYN_EMIT_BENCH=1 to measure and write BENCH_relayout.json")
	}
	raw, frozen, adaptive, gens := relayoutSetups(t)
	pts := latePositions(raw, relayoutBenchT-3)
	type entry struct {
		Name       string  `json:"name"`
		NumCells   int     `json:"num_cells"`
		DomainSize int     `json:"domain_size"`
		DensityL1  float64 `json:"late_round_density_l1"`
	}
	measure := func(name string, sp Discretizer) entry {
		return entry{
			Name:       name,
			NumCells:   sp.NumCells(),
			DomainSize: transition.NewDomain(sp).Size(),
			DensityL1:  relayoutL1(sp, pts, 5),
		}
	}
	fr := measure("frozen-boot-quadtree", frozen)
	ad := measure("adaptive-relayout", adaptive)
	degraded, degradGens, stableGens := relayoutDegradationResults(t)
	dg := measure("adaptive-degradation-or", degraded)
	out := struct {
		Workload      string  `json:"workload"`
		Epsilon       float64 `json:"epsilon"`
		Reports       int     `json:"reports_per_round"`
		RefGrid       int     `json:"reference_grid"`
		Migrations    int     `json:"migrations"`
		GOMAXPROCS    int     `json:"gomaxprocs"`
		Frozen        entry   `json:"frozen"`
		Adaptive      entry   `json:"adaptive"`
		Degradation   entry   `json:"degradation_or"`
		L1Ratio       float64 `json:"l1_ratio_adaptive_vs_frozen"`
		DomainRatio   float64 `json:"domain_ratio_adaptive_vs_frozen"`
		DegradL1Ratio float64 `json:"l1_ratio_degradation_vs_geometric"`
		DegradGens    int     `json:"degradation_migrations"`
		StableGeoGens int     `json:"stable_twin_migrations_geometric"`
		StableDegGens int     `json:"stable_twin_migrations_degradation_or"`
	}{
		Workload:      "drifting hotspot: 85% of ~6600 sessions inside a hotspot crossing a 32×32 space over 60 timestamps",
		Epsilon:       relayoutBenchEps,
		Reports:       len(pts),
		RefGrid:       relayoutRefK,
		Migrations:    gens,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Frozen:        fr,
		Adaptive:      ad,
		Degradation:   dg,
		L1Ratio:       ad.DensityL1 / fr.DensityL1,
		DomainRatio:   float64(ad.DomainSize) / float64(fr.DomainSize),
		DegradL1Ratio: dg.DensityL1 / ad.DensityL1,
		DegradGens:    degradGens,
		StableGeoGens: stableGens[TriggerGeometric],
		StableDegGens: stableGens[TriggerDegradationOr],
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_relayout.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("density L1 ratio %.3f (adaptive/frozen), %d migrations", out.L1Ratio, out.Migrations)
	t.Logf("degradation-or: L1 ratio %.3f vs geometric, %d migrations (stable twin: %d vs geometric's %d)",
		out.DegradL1Ratio, out.DegradGens, out.StableDegGens, out.StableGeoGens)
	if out.L1Ratio >= 1 {
		t.Errorf("adaptive layout did not reduce late-round density error (ratio %.3f)", out.L1Ratio)
	}
	if out.DegradL1Ratio > 1 {
		t.Errorf("degradation-or trigger cost utility vs geometric (ratio %.3f)", out.DegradL1Ratio)
	}
	if out.StableDegGens > out.StableGeoGens {
		t.Errorf("degradation-or fired more relayouts than geometric on the stationary twin (%d vs %d)",
			out.StableDegGens, out.StableGeoGens)
	}
}
