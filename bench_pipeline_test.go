package retrasyn

// Benchmarks of the curator aggregation hot path: the sequential sparse
// fold, the sharded sparse fold, the bit-packed word-parallel fold
// (carry-save popcount network), and the OLH support scan — plus the
// multi-shard Coordinator against a single pipeline instance. Run with
//
//	go test -bench 'Aggregation|Coordinator' -run - .
//
// RETRASYN_EMIT_BENCH=1 go test -run TestEmitBenchPipelineJSON .
// re-measures everything across a GOMAXPROCS sweep ∈ {1, 2, 4, NumCPU} and
// writes the results — with a reports/sec-per-core headline and the wire
// size of all four /v1/report batch encodings (sparse/packed × JSON/binary
// frame) — to BENCH_pipeline.json.
// RETRASYN_REQUIRE_MULTICORE=1 (set in CI) makes the emit fail on a
// single-CPU box, so the committed parallel numbers are never fiction.

import (
	"encoding/json"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"retrasyn/internal/ldp"
	"retrasyn/internal/remote"
)

// benchReports is one paper-scale OUE round: 100k reporters over the K=6
// transition domain (|S| = 328). benchOLHReports is smaller because each
// OLH report costs an O(|S|) support scan on the server.
const (
	benchReports    = 100_000
	benchOLHReports = 20_000
	benchDomain     = 328
	benchEpsilon    = 1.0
)

var benchRound struct {
	once    sync.Once
	oracle  *ldp.OUE
	reports [][]int
	packed  *ldp.PackedBatch
	olh     *ldp.OLH
	olhReps []ldp.OLHReport
}

func benchRoundOnce() *ldp.OUE {
	benchRound.once.Do(func() {
		benchRound.oracle = ldp.MustOUE(benchDomain, benchEpsilon)
		rng := ldp.NewRand(1, 2)
		benchRound.reports = make([][]int, benchReports)
		benchRound.packed = ldp.NewPackedBatch(benchDomain, benchReports)
		for i := range benchRound.reports {
			// The packed batch holds the very same reports, so the sparse and
			// packed folds are directly comparable (and must agree exactly).
			benchRound.reports[i] = benchRound.oracle.Perturb(rng, i%benchDomain)
			p, err := ldp.PackReport(benchRound.reports[i], benchDomain)
			if err != nil {
				panic(err)
			}
			benchRound.packed.Append(p)
		}
		benchRound.olh = ldp.MustOLH(benchDomain, benchEpsilon)
		src := ldp.NewSource(3, 4)
		benchRound.olhReps = make([]ldp.OLHReport, benchOLHReports)
		for i := range benchRound.olhReps {
			benchRound.olhReps[i] = benchRound.olh.Perturb(src, src, i%benchDomain)
		}
	})
	return benchRound.oracle
}

func runOUESparse(b *testing.B, workers int) {
	oracle := benchRoundOnce()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := ldp.NewAggregator(oracle)
		agg.AddReports(benchRound.reports, workers)
		agg.EstimateAll()
	}
}

func runOUEPacked(b *testing.B, workers int) {
	oracle := benchRoundOnce()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := ldp.NewAggregator(oracle)
		agg.AddPackedBatch(benchRound.packed, workers)
		agg.EstimateAll()
	}
}

func runOLH(b *testing.B, workers int) {
	benchRoundOnce()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := ldp.NewOLHAggregator(benchRound.olh)
		agg.AddReports(benchRound.olhReps, workers)
		agg.EstimateAll()
	}
}

// BenchmarkOUEAggregationSequential folds one 100k-report round with the
// sequential per-report sparse loop the monolithic engine used.
func BenchmarkOUEAggregationSequential(b *testing.B) { runOUESparse(b, 1) }

// BenchmarkOUEAggregationSharded folds the same round's sparse reports
// sharded across runtime.NumCPU() workers.
func BenchmarkOUEAggregationSharded(b *testing.B) { runOUESparse(b, runtime.NumCPU()) }

// BenchmarkOUEAggregationPacked folds the same round bit-packed through the
// word-parallel carry-save popcount network.
func BenchmarkOUEAggregationPacked(b *testing.B) { runOUEPacked(b, runtime.NumCPU()) }

// BenchmarkOLHAggregationSequential runs the O(|S|)-per-report OLH support
// scan one report at a time.
func BenchmarkOLHAggregationSequential(b *testing.B) { runOLH(b, 1) }

// BenchmarkOLHAggregationSharded shards the OLH support scan across
// runtime.NumCPU() workers.
func BenchmarkOLHAggregationSharded(b *testing.B) { runOLH(b, runtime.NumCPU()) }

// benchCoordinatorData caches the coordinator benchmark's input stream.
var benchCoordinatorData struct {
	once sync.Once
	orig *Dataset
	g    *Grid
}

func coordinatorDataOnce(b *testing.B) (*Dataset, *Grid) {
	benchCoordinatorData.once.Do(func() {
		raw, bounds, err := StandardDataset("tdrive", 0.3, 5)
		if err != nil {
			b.Fatal(err)
		}
		g, err := NewGrid(6, bounds)
		if err != nil {
			b.Fatal(err)
		}
		benchCoordinatorData.orig = Discretize(raw, g)
		benchCoordinatorData.g = g
	})
	return benchCoordinatorData.orig, benchCoordinatorData.g
}

func benchCoordinator(b *testing.B, shards int) {
	orig, g := coordinatorDataOnce(b)
	lambda := orig.Stats().AvgLength
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw, err := New(Options{
			Grid: g, Epsilon: 1.0, Window: 10,
			Lambda: lambda, Shards: shards, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := fw.Run(orig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinator1Shard drives the full stream through a single
// sequential pipeline instance.
func BenchmarkCoordinator1Shard(b *testing.B) { benchCoordinator(b, 1) }

// BenchmarkCoordinatorPShards fans the same stream out across
// runtime.NumCPU() pipeline instances.
func BenchmarkCoordinatorPShards(b *testing.B) { benchCoordinator(b, runtime.NumCPU()) }

// gomaxprocsLevels is the emit sweep: 1, 2, 4 and NumCPU, deduplicated and
// ascending. Levels above NumCPU still run (the scheduler timeshares) so a
// sweep recorded on a small box is visibly labeled rather than silently
// truncated.
func gomaxprocsLevels() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var levels []int
	for l := range set {
		levels = append(levels, l)
	}
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] < levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	return levels
}

// benchEntry is one measured configuration in BENCH_pipeline.json.
type benchEntry struct {
	Name       string  `json:"name"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	NsPerOp    float64 `json:"ns_per_op"`
	ReportsSec float64 `json:"reports_per_sec"`
	// ReportsSecPerCore divides throughput by the GOMAXPROCS it ran at — the
	// honest multi-core number: adding cores must earn its keep.
	ReportsSecPerCore float64 `json:"reports_per_sec_per_core"`
	Speedup           float64 `json:"speedup_vs_baseline,omitempty"`
	Baseline          string  `json:"baseline,omitempty"`
}

// TestEmitBenchPipelineJSON measures the aggregation and coordinator
// benchmarks across the GOMAXPROCS sweep and writes BENCH_pipeline.json.
// Gated behind RETRASYN_EMIT_BENCH so the regular suite stays fast.
func TestEmitBenchPipelineJSON(t *testing.T) {
	if os.Getenv("RETRASYN_EMIT_BENCH") == "" {
		t.Skip("set RETRASYN_EMIT_BENCH=1 to measure and write BENCH_pipeline.json")
	}
	if os.Getenv("RETRASYN_REQUIRE_MULTICORE") != "" && runtime.NumCPU() < 2 {
		t.Fatalf("RETRASYN_REQUIRE_MULTICORE is set but NumCPU=%d: refusing to record parallel numbers on a single-CPU box", runtime.NumCPU())
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	measure := func(name string, procs, workers, reports int, f func(*testing.B)) benchEntry {
		runtime.GOMAXPROCS(procs)
		// Best of three: one-shot testing.Benchmark readings on shared/cloud
		// CPUs swing enough to distort every speedup ratio in the file.
		ns := float64(testing.Benchmark(f).NsPerOp())
		for i := 0; i < 2; i++ {
			if n := float64(testing.Benchmark(f).NsPerOp()); n < ns {
				ns = n
			}
		}
		rps := float64(reports) / (ns / 1e9)
		return benchEntry{
			Name: name, GOMAXPROCS: procs, Workers: workers, NsPerOp: ns,
			ReportsSec: rps, ReportsSecPerCore: rps / float64(procs),
		}
	}
	rel := func(e *benchEntry, base benchEntry) {
		e.Speedup = base.NsPerOp / e.NsPerOp
		e.Baseline = base.Name
	}

	// The packed fold must be a re-encoding, not a re-randomization: pin
	// bit-identical estimates before trusting any throughput number.
	oracle := benchRoundOnce()
	seqAgg := ldp.NewAggregator(oracle)
	seqAgg.AddReports(benchRound.reports, 1)
	packedAgg := ldp.NewAggregator(oracle)
	packedAgg.AddPackedBatch(benchRound.packed, runtime.NumCPU())
	if !reflect.DeepEqual(seqAgg.EstimateAll(), packedAgg.EstimateAll()) {
		t.Fatal("packed fold estimates are not bit-identical to the sequential sparse fold")
	}

	levels := gomaxprocsLevels()
	var results []benchEntry

	seq := measure("OUEAggregationSequential/100k-reports", 1, 1, benchReports, func(b *testing.B) { runOUESparse(b, 1) })
	results = append(results, seq)
	var bestPacked benchEntry
	for _, l := range levels {
		l := l
		sharded := measure("OUEAggregationSharded/100k-reports", l, l, benchReports, func(b *testing.B) { runOUESparse(b, l) })
		rel(&sharded, seq)
		packed := measure("OUEAggregationPacked/100k-reports", l, l, benchReports, func(b *testing.B) { runOUEPacked(b, l) })
		rel(&packed, seq)
		results = append(results, sharded, packed)
		if packed.ReportsSec > bestPacked.ReportsSec {
			bestPacked = packed
		}
	}

	olhSeq := measure("OLHAggregationSequential/20k-reports", 1, 1, benchOLHReports, func(b *testing.B) { runOLH(b, 1) })
	results = append(results, olhSeq)
	for _, l := range levels {
		if l == 1 {
			continue
		}
		l := l
		olhSharded := measure("OLHAggregationSharded/20k-reports", l, l, benchOLHReports, func(b *testing.B) { runOLH(b, l) })
		rel(&olhSharded, olhSeq)
		results = append(results, olhSharded)
	}

	nCPU := runtime.NumCPU()
	coord1 := measure("Coordinator/1-shard", nCPU, 1, 0, BenchmarkCoordinator1Shard)
	coordP := measure("Coordinator/NumCPU-shards", nCPU, nCPU, 0, BenchmarkCoordinatorPShards)
	rel(&coordP, coord1)
	coord1.ReportsSec, coord1.ReportsSecPerCore = 0, 0
	coordP.ReportsSec, coordP.ReportsSecPerCore = 0, 0
	results = append(results, coord1, coordP)

	// Wire size of one 1000-report /v1/report batch, both encodings.
	wire := measureWireBytes(t)

	out := struct {
		NumCPU           int          `json:"num_cpu"`
		GOMAXPROCSLevels []int        `json:"gomaxprocs_levels"`
		Reports          int          `json:"reports"`
		Domain           int          `json:"domain"`
		Epsilon          float64      `json:"epsilon"`
		Headline         headlineJSON `json:"headline"`
		Wire             wireJSON     `json:"wire_bytes_per_1000_report_batch"`
		Results          []benchEntry `json:"results"`
	}{
		NumCPU:           nCPU,
		GOMAXPROCSLevels: levels,
		Reports:          benchReports,
		Domain:           benchDomain,
		Epsilon:          benchEpsilon,
		Headline: headlineJSON{
			Name:              bestPacked.Name,
			GOMAXPROCS:        bestPacked.GOMAXPROCS,
			ReportsSec:        bestPacked.ReportsSec,
			ReportsSecPerCore: bestPacked.ReportsSecPerCore,
			SpeedupVsSeq:      bestPacked.Speedup,
		},
		Wire:    wire,
		Results: results,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("packed fold: ×%.1f vs sequential sparse (%.2fM reports/sec, %.2fM/sec/core at GOMAXPROCS=%d)",
		bestPacked.Speedup, bestPacked.ReportsSec/1e6, bestPacked.ReportsSecPerCore/1e6, bestPacked.GOMAXPROCS)
	t.Logf("wire: sparse %dB vs packed %dB per 1000-report batch (×%.1f smaller)",
		wire.SparseJSON, wire.PackedJSON, float64(wire.SparseJSON)/float64(wire.PackedJSON))
	t.Logf("wire: binary packed frame %dB = %.3f× packed JSON, %.3f× sparse JSON",
		wire.PackedBinary, wire.PackedBinaryOverPackedJSON, wire.PackedBinaryOverSparseJSON)

	if bestPacked.Speedup < 10 {
		t.Errorf("packed aggregation speedup ×%.2f below the ≥10× target", bestPacked.Speedup)
	}
	if nCPU > 1 && coordP.Speedup <= 1 {
		t.Errorf("multi-shard coordinator is not faster than one shard (×%.2f)", coordP.Speedup)
	}
	// Binary frame gates. The packed frame must shed all of base64+framing
	// (≤0.6× packed JSON leaves headroom over the 41/79 ≈ 0.52 raw-bits
	// floor) and crush the sparse JSON a pre-PR-6 client shipped (≤0.3× —
	// it measures ~0.12×). No gate asks for less than the report's entropy.
	if wire.PackedBinaryOverPackedJSON > 0.6 {
		t.Errorf("binary packed frame is %.3f× packed JSON, above the ≤0.6× target", wire.PackedBinaryOverPackedJSON)
	}
	if wire.PackedBinaryOverSparseJSON > 0.3 {
		t.Errorf("binary packed frame is %.3f× sparse JSON, above the ≤0.3× target", wire.PackedBinaryOverSparseJSON)
	}
	if wire.SparseBinary >= wire.SparseJSON {
		t.Errorf("binary sparse frame (%dB) is not smaller than sparse JSON (%dB)", wire.SparseBinary, wire.SparseJSON)
	}
}

type headlineJSON struct {
	Name              string  `json:"name"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	ReportsSec        float64 `json:"reports_per_sec"`
	ReportsSecPerCore float64 `json:"reports_per_sec_per_core"`
	SpeedupVsSeq      float64 `json:"speedup_vs_sequential_sparse"`
}

type wireJSON struct {
	SparseJSON   int     `json:"sparse_json"`
	PackedJSON   int     `json:"packed_json"`
	SparseBinary int     `json:"sparse_binary"`
	PackedBinary int     `json:"packed_binary"`
	Ratio        float64 `json:"sparse_over_packed"`
	// Binary packed vs the two JSON encodings. The packed-JSON ratio floors
	// near 0.75× ⌈d/8⌉/base64 arithmetic would suggest because an OUE report
	// is near-uniform noise by design: at ε=1 its Shannon entropy is ≈0.84
	// bits/bit, so raw bits (41 B at d=328) sit close to the
	// information-theoretic minimum (~34 B) and only the base64 and field
	// framing can be removed, never the randomness itself.
	PackedBinaryOverPackedJSON float64 `json:"packed_binary_over_packed_json"`
	PackedBinaryOverSparseJSON float64 `json:"packed_binary_over_sparse_json"`
}

// measureWireBytes marshals the same 1000-report batch as all four
// /v1/report encodings — sparse/packed × JSON/binary-frame — and records
// the body sizes.
func measureWireBytes(t *testing.T) wireJSON {
	t.Helper()
	benchRoundOnce()
	batch := make([]remote.BatchReport, 1000)
	for i := range batch {
		batch[i] = remote.BatchReport{User: i, Ones: benchRound.reports[i]}
	}
	packed, err := remote.PackReportBatch(batch, benchDomain)
	if err != nil {
		t.Fatal(err)
	}
	sparseBody, err := json.Marshal(struct {
		T       int                  `json:"t"`
		Reports []remote.BatchReport `json:"reports"`
	}{T: 0, Reports: batch})
	if err != nil {
		t.Fatal(err)
	}
	packedBody, err := json.Marshal(struct {
		T      int                        `json:"t"`
		Packed []remote.PackedBatchReport `json:"packed"`
	}{T: 0, Packed: packed})
	if err != nil {
		t.Fatal(err)
	}
	sparseFrame, err := remote.EncodeSparseReportFrame(0, batch)
	if err != nil {
		t.Fatal(err)
	}
	packedFrame, err := remote.EncodePackedReportFrame(0, benchDomain, packed)
	if err != nil {
		t.Fatal(err)
	}
	return wireJSON{
		SparseJSON:                 len(sparseBody),
		PackedJSON:                 len(packedBody),
		SparseBinary:               len(sparseFrame),
		PackedBinary:               len(packedFrame),
		Ratio:                      float64(len(sparseBody)) / float64(len(packedBody)),
		PackedBinaryOverPackedJSON: float64(len(packedFrame)) / float64(len(packedBody)),
		PackedBinaryOverSparseJSON: float64(len(packedFrame)) / float64(len(sparseBody)),
	}
}
