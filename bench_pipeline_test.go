package retrasyn

// Benchmarks of the staged-pipeline additions: sharded OUE report
// aggregation vs the sequential fold, and the multi-shard Coordinator vs a
// single pipeline instance. Run with
//
//	go test -bench 'Aggregation|Coordinator' -run - .
//
// RETRASYN_EMIT_BENCH=1 go test -run TestEmitBenchPipelineJSON .
// re-measures both and writes the results to BENCH_pipeline.json.

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"retrasyn/internal/ldp"
)

// paperScaleReports is one paper-scale OUE round: 100k reporters over the
// K=6 transition domain (|S| = 328).
const (
	benchReports = 100_000
	benchDomain  = 328
)

var benchRound struct {
	once    sync.Once
	oracle  *ldp.OUE
	reports [][]int
}

func benchReportsOnce() (*ldp.OUE, [][]int) {
	benchRound.once.Do(func() {
		benchRound.oracle = ldp.MustOUE(benchDomain, 1.0)
		rng := ldp.NewRand(1, 2)
		benchRound.reports = make([][]int, benchReports)
		for i := range benchRound.reports {
			benchRound.reports[i] = benchRound.oracle.Perturb(rng, i%benchDomain)
		}
	})
	return benchRound.oracle, benchRound.reports
}

// BenchmarkOUEAggregationSequential folds one 100k-report round with the
// sequential per-report loop the monolithic engine used.
func BenchmarkOUEAggregationSequential(b *testing.B) {
	oracle, reports := benchReportsOnce()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := ldp.NewAggregator(oracle)
		agg.AddReports(reports, 1)
		agg.EstimateAll()
	}
}

// BenchmarkOUEAggregationSharded folds the same round sharded across
// runtime.NumCPU() workers.
func BenchmarkOUEAggregationSharded(b *testing.B) {
	oracle, reports := benchReportsOnce()
	workers := runtime.NumCPU()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := ldp.NewAggregator(oracle)
		agg.AddReports(reports, workers)
		agg.EstimateAll()
	}
}

// benchCoordinatorData caches the coordinator benchmark's input stream.
var benchCoordinatorData struct {
	once sync.Once
	orig *Dataset
	g    *Grid
}

func coordinatorDataOnce(b *testing.B) (*Dataset, *Grid) {
	benchCoordinatorData.once.Do(func() {
		raw, bounds, err := StandardDataset("tdrive", 0.3, 5)
		if err != nil {
			b.Fatal(err)
		}
		g, err := NewGrid(6, bounds)
		if err != nil {
			b.Fatal(err)
		}
		benchCoordinatorData.orig = Discretize(raw, g)
		benchCoordinatorData.g = g
	})
	return benchCoordinatorData.orig, benchCoordinatorData.g
}

func benchCoordinator(b *testing.B, shards int) {
	orig, g := coordinatorDataOnce(b)
	lambda := orig.Stats().AvgLength
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw, err := New(Options{
			Grid: g, Epsilon: 1.0, Window: 10,
			Lambda: lambda, Shards: shards, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := fw.Run(orig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoordinator1Shard drives the full stream through a single
// sequential pipeline instance.
func BenchmarkCoordinator1Shard(b *testing.B) { benchCoordinator(b, 1) }

// BenchmarkCoordinatorPShards fans the same stream out across
// runtime.NumCPU() pipeline instances.
func BenchmarkCoordinatorPShards(b *testing.B) { benchCoordinator(b, runtime.NumCPU()) }

// TestEmitBenchPipelineJSON measures the pipeline benchmarks and writes
// BENCH_pipeline.json. Gated behind RETRASYN_EMIT_BENCH so the regular
// suite stays fast.
func TestEmitBenchPipelineJSON(t *testing.T) {
	if os.Getenv("RETRASYN_EMIT_BENCH") == "" {
		t.Skip("set RETRASYN_EMIT_BENCH=1 to measure and write BENCH_pipeline.json")
	}
	type entry struct {
		Name     string  `json:"name"`
		NsPerOp  float64 `json:"ns_per_op"`
		Speedup  float64 `json:"speedup_vs_baseline,omitempty"`
		Baseline string  `json:"baseline,omitempty"`
	}
	measure := func(name string, f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{Name: name, NsPerOp: float64(r.NsPerOp())}
	}
	seqAgg := measure("OUEAggregationSequential/100k-reports", BenchmarkOUEAggregationSequential)
	shardAgg := measure("OUEAggregationSharded/100k-reports", BenchmarkOUEAggregationSharded)
	shardAgg.Speedup = seqAgg.NsPerOp / shardAgg.NsPerOp
	shardAgg.Baseline = seqAgg.Name
	coord1 := measure("Coordinator/1-shard", BenchmarkCoordinator1Shard)
	coordP := measure("Coordinator/NumCPU-shards", BenchmarkCoordinatorPShards)
	coordP.Speedup = coord1.NsPerOp / coordP.NsPerOp
	coordP.Baseline = coord1.Name

	out := struct {
		GOMAXPROCS int     `json:"gomaxprocs"`
		NumCPU     int     `json:"num_cpu"`
		Results    []entry `json:"results"`
	}{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Results:    []entry{seqAgg, shardAgg, coord1, coordP},
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("aggregation speedup ×%.2f, coordinator speedup ×%.2f", shardAgg.Speedup, coordP.Speedup)
	// On a single-CPU host the sharded paths fall back to (or degenerate
	// into) the sequential fold, so a speedup is only expected with real
	// parallelism available.
	if runtime.NumCPU() > 1 && shardAgg.Speedup <= 1 {
		t.Errorf("sharded aggregation is not faster than sequential (×%.2f)", shardAgg.Speedup)
	}
}
