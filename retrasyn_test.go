package retrasyn

import (
	"strconv"

	"bytes"
	"math"
	"retrasyn/internal/obs"
	"strings"
	"testing"
)

func smallDataset(t *testing.T) (*Dataset, *Grid) {
	t.Helper()
	raw, bounds, err := StandardDataset("tdrive", 0.03, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(4, bounds)
	if err != nil {
		t.Fatal(err)
	}
	return Discretize(raw, g), g
}

func TestFrameworkRunEndToEnd(t *testing.T) {
	orig, g := smallDataset(t)
	fw, err := New(Options{
		Grid:    g,
		Epsilon: 1.0,
		Window:  10,
		Lambda:  orig.Stats().AvgLength,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, stats, err := fw.Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timestamps != orig.T {
		t.Fatalf("timestamps = %d", stats.Timestamps)
	}
	if err := syn.Validate(g, true); err != nil {
		t.Fatalf("invalid synthetic dataset: %v", err)
	}
	report := EvaluateUtility(orig, syn, g, UtilityOptions{Seed: 1})
	if report.DensityError < 0 || report.DensityError > math.Ln2+1e-9 {
		t.Fatalf("density error out of range: %v", report.DensityError)
	}
	if math.IsNaN(report.KendallTau) {
		t.Fatal("NaN Kendall tau")
	}
}

func TestFrameworkRunTwicRejected(t *testing.T) {
	orig, g := smallDataset(t)
	fw, _ := New(Options{Grid: g, Epsilon: 1, Window: 10, Lambda: 5})
	if _, _, err := fw.Run(orig); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw.Run(orig); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestFrameworkStreamingAPI(t *testing.T) {
	orig, g := smallDataset(t)
	fw, err := New(Options{Grid: g, Epsilon: 1, Window: 10, Lambda: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	events, active := NewStreamEvents(orig)
	for ts := range events {
		if fw.Timestamp() != ts {
			t.Fatalf("Timestamp = %d, want %d", fw.Timestamp(), ts)
		}
		if err := fw.ProcessTimestamp(events[ts], active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	syn := fw.Synthetic("streamed")
	if syn.T != orig.T {
		t.Fatalf("synthetic timeline = %d", syn.T)
	}
	if err := syn.Validate(g, true); err != nil {
		t.Fatal(err)
	}
	// Population division guarantees size mirroring.
	synActive := syn.ActiveCounts()
	for ts, want := range active {
		if synActive[ts] != want {
			t.Fatalf("t=%d: synthetic active %d, real %d", ts, synActive[ts], want)
		}
	}
}

func TestFrameworkSharded(t *testing.T) {
	orig, g := smallDataset(t)
	run := func(shards int) (*Dataset, RunStats) {
		fw, err := New(Options{
			Grid:    g,
			Epsilon: 1.0,
			Window:  10,
			Lambda:  orig.Stats().AvgLength,
			Shards:  shards,
			Seed:    9,
		})
		if err != nil {
			t.Fatal(err)
		}
		syn, stats, err := fw.Run(orig)
		if err != nil {
			t.Fatal(err)
		}
		return syn, stats
	}
	single, _ := run(1)
	sharded, stats := run(3)
	if err := sharded.Validate(g, true); err != nil {
		t.Fatalf("invalid merged release: %v", err)
	}
	if stats.Timestamps != orig.T {
		t.Fatalf("timestamps = %d", stats.Timestamps)
	}
	// The merged multi-shard release tracks the same global population as
	// the single-shard run.
	want := single.ActiveCounts()
	got := sharded.ActiveCounts()
	for ts := range want {
		if got[ts] != want[ts] {
			t.Fatalf("t=%d: sharded active %d, single-shard %d", ts, got[ts], want[ts])
		}
	}
	// And two identical sharded runs are deterministic.
	again, _ := run(3)
	if len(again.Trajs) != len(sharded.Trajs) {
		t.Fatalf("non-deterministic sharded run: %d vs %d streams", len(again.Trajs), len(sharded.Trajs))
	}
}

func TestFrameworkOptionsValidation(t *testing.T) {
	_, g := smallDataset(t)
	bad := []Options{
		{Grid: nil, Epsilon: 1, Window: 10, Lambda: 5},
		{Grid: g, Epsilon: 0, Window: 10, Lambda: 5},
		{Grid: g, Epsilon: 1, Window: 0, Lambda: 5},
		{Grid: g, Epsilon: 1, Window: 10, Lambda: 0},
		{Grid: g, Epsilon: 1, Window: 10, Lambda: 5, Strategy: "zigzag"},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// All valid strategies and divisions construct.
	for _, s := range []string{"", StrategyAdaptive, StrategyUniform, StrategySample} {
		for _, d := range []Division{BudgetDivision, PopulationDivision} {
			if _, err := New(Options{Grid: g, Epsilon: 1, Window: 10, Lambda: 5, Strategy: s, Division: d}); err != nil {
				t.Errorf("strategy %q division %v rejected: %v", s, d, err)
			}
		}
	}
}

func TestFrameworkAblations(t *testing.T) {
	orig, g := smallDataset(t)
	for _, opts := range []Options{
		{Grid: g, Epsilon: 1, Window: 10, Lambda: 8, DisableDMU: true},
		{Grid: g, Epsilon: 1, Window: 10, DisableEQ: true},
		{Grid: g, Epsilon: 1, Window: 10, Lambda: 8, FaithfulClients: true},
	} {
		fw, err := New(opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		syn, _, err := fw.Run(orig)
		if err != nil {
			t.Fatal(err)
		}
		if err := syn.Validate(g, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	orig, g := smallDataset(t)
	for _, m := range []BaselineMethod{LBD, LBA, LPD, LPA} {
		syn, err := RunBaseline(orig, g, m, 1.0, 10, 7)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := syn.Validate(g, true); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestStandardDatasetNames(t *testing.T) {
	for _, name := range []string{"tdrive", "oldenburg", "sanjoaquin"} {
		raw, bounds, err := StandardDataset(name, 0.02, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(raw.Trajs) == 0 || !bounds.Valid() {
			t.Fatalf("%s: degenerate output", name)
		}
	}
	if _, _, err := StandardDataset("mars", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGenerateHelpers(t *testing.T) {
	net, err := GenerateRoadNetwork(6, Bounds{MaxX: 5, MaxY: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := GenerateBrinkhoffLike(net, BrinkhoffConfig{T: 20, InitialUsers: 10, QuitProb: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Trajs) != 10 {
		t.Fatalf("streams = %d", len(raw.Trajs))
	}
	td, err := GenerateTDriveLike(TDriveConfig{T: 20, ArrivalsPerTs: 5, MaxX: 10, MaxY: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Trajs) == 0 {
		t.Fatal("empty tdrive output")
	}
}

func TestStateConstructors(t *testing.T) {
	m := MoveState(1, 2)
	if m.From != 1 || m.To != 2 {
		t.Fatal("MoveState")
	}
	e := EnterState(3)
	if e.To != 3 {
		t.Fatal("EnterState")
	}
	q := QuitState(4)
	if q.From != 4 {
		t.Fatal("QuitState")
	}
}

// equalDatasets compares two releases stream-by-stream.
func equalDatasets(a, b *Dataset) bool {
	if a.T != b.T || len(a.Trajs) != len(b.Trajs) {
		return false
	}
	for i := range a.Trajs {
		if a.Trajs[i].Start != b.Trajs[i].Start || len(a.Trajs[i].Cells) != len(b.Trajs[i].Cells) {
			return false
		}
		for j, c := range a.Trajs[i].Cells {
			if b.Trajs[i].Cells[j] != c {
				return false
			}
		}
	}
	return true
}

// TestFrameworkSnapshotRoundTrip checks the facade checkpoint contract for
// both the single-engine and the multi-shard coordinator paths: snapshot at
// T/2, serialize through Encode/Decode, restore into a fresh framework, and
// the final release must be bit-identical to an uninterrupted run.
func TestFrameworkSnapshotRoundTrip(t *testing.T) {
	orig, g := smallDataset(t)
	events, active := NewStreamEvents(orig)
	for _, shards := range []int{1, 3} {
		opts := Options{
			Grid:    g,
			Epsilon: 1.0,
			Window:  10,
			Lambda:  orig.Stats().AvgLength,
			Shards:  shards,
			Seed:    17,
		}
		feed := func(fw *Framework, from, to int) {
			t.Helper()
			for ts := from; ts < to; ts++ {
				if err := fw.ProcessTimestamp(events[ts], active[ts]); err != nil {
					t.Fatal(err)
				}
			}
		}

		uninterrupted, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		feed(uninterrupted, 0, orig.T)

		half := orig.T / 2
		fw, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		feed(fw, 0, half)
		cp, err := fw.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := Restore(opts, decoded)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Timestamp() != half {
			t.Fatalf("shards=%d: restored at t=%d, want %d", shards, resumed.Timestamp(), half)
		}
		feed(resumed, half, orig.T)

		if !equalDatasets(resumed.Synthetic("syn"), uninterrupted.Synthetic("syn")) {
			t.Fatalf("shards=%d: resumed release differs from uninterrupted run", shards)
		}
		// Restoring into a mismatched shard count must fail.
		bad := opts
		bad.Shards = shards + 1
		if _, err := Restore(bad, decoded); err == nil {
			t.Fatalf("shards=%d: restore into %d shards accepted", shards, bad.Shards)
		}
	}
}

// TestProcessTimestampValidation covers the facade input checks: negative
// active counts and duplicate per-timestamp user IDs are rejected without
// advancing the stream.
func TestProcessTimestampValidation(t *testing.T) {
	g, err := NewGrid(4, Bounds{MaxX: 1, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(Options{Grid: g, Epsilon: 1, Window: 5, Lambda: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.ProcessTimestamp(nil, -1); err == nil {
		t.Fatal("negative activeUsers accepted")
	}
	dup := []Event{
		{User: 7, State: EnterState(0)},
		{User: 7, State: EnterState(1)},
	}
	err = fw.ProcessTimestamp(dup, 2)
	if err == nil {
		t.Fatal("duplicate user accepted")
	}
	if !strings.Contains(err.Error(), "user 7") {
		t.Fatalf("error does not name the duplicate user: %v", err)
	}
	if fw.Timestamp() != 0 {
		t.Fatalf("framework advanced to t=%d on rejected input", fw.Timestamp())
	}
	ok := []Event{
		{User: 7, State: EnterState(0)},
		{User: 8, State: EnterState(1)},
	}
	if err := fw.ProcessTimestamp(ok, 2); err != nil {
		t.Fatal(err)
	}
	if fw.Timestamp() != 1 {
		t.Fatalf("framework did not advance on valid input")
	}
}

// TestFrameworkMetricsBitIdentical is the golden bit-identity gate for the
// observability layer: a framework run with a live metrics registry must
// release the exact synthetic database an uninstrumented run does — the
// instrumentation never touches the RNG stream — while the registry's
// pipeline and budget series actually move.
func TestFrameworkMetricsBitIdentical(t *testing.T) {
	orig, g := smallDataset(t)
	opts := func() Options {
		return Options{Grid: g, Epsilon: 1, Window: 10, Lambda: 8, Seed: 3, Shards: 2}
	}
	run := func(o Options) *Dataset {
		fw, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		events, active := NewStreamEvents(orig)
		for ts := range events {
			if err := fw.ProcessTimestamp(events[ts], active[ts]); err != nil {
				t.Fatal(err)
			}
		}
		return fw.Synthetic("syn")
	}
	plain := run(opts())
	reg := NewMetrics()
	o := opts()
	o.Metrics = reg
	instrumented := run(o)

	if pa, pb := plain.ActiveCounts(), instrumented.ActiveCounts(); len(pa) != len(pb) {
		t.Fatal("timeline length diverged under instrumentation")
	}
	for i := range plain.Trajs {
		a, b := plain.Trajs[i], instrumented.Trajs[i]
		if a.Start != b.Start || len(a.Cells) != len(b.Cells) {
			t.Fatalf("trajectory %d diverged under instrumentation", i)
		}
		for j := range a.Cells {
			if a.Cells[j] != b.Cells[j] {
				t.Fatalf("trajectory %d cell %d diverged under instrumentation", i, j)
			}
		}
	}

	var stepped int64
	for shard := 0; shard < 2; shard++ {
		sh := obs.Label{Key: "shard", Value: strconv.Itoa(shard)}
		stepped += reg.Counter("pipeline.rounds", sh).Value() +
			reg.Counter("pipeline.silent_timestamps", sh).Value()
	}
	if want := int64(2 * orig.T); stepped != want {
		t.Fatalf("pipeline stepped %d shard-rounds, want %d", stepped, want)
	}
	if reg.Counter("budget.rounds").Value()+reg.Counter("budget.silent_rounds").Value() == 0 {
		t.Fatal("budget meter never observed a round")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`pipeline_stage_latency_us_count{shard="0",stage="dmu"}`,
		`pipeline_stage_latency_us_count{shard="1",stage="dmu"}`,
		"budget_cumulative_eps",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("facade exposition missing %q", want)
		}
	}
}
