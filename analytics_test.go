package retrasyn

import "testing"

func TestAnalyticsOverSyntheticRelease(t *testing.T) {
	orig, g := smallDataset(t)
	fw, err := New(Options{Grid: g, Epsilon: 1, Window: 10, Lambda: orig.Stats().AvgLength, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	syn, _, err := fw.Run(orig)
	if err != nil {
		t.Fatal(err)
	}

	real := NewAnalytics(orig, g)
	private := NewAnalytics(syn, g)

	// The size-adjustment guarantee surfaces directly through analytics:
	// the population curves coincide at every timestamp.
	for ts := 0; ts < orig.T; ts++ {
		if real.ActiveAt(ts) != private.ActiveAt(ts) {
			t.Fatalf("t=%d: population curve diverged: %d vs %d",
				ts, real.ActiveAt(ts), private.ActiveAt(ts))
		}
	}

	// Whole-space range counts equal total points, on both sides.
	all := Region{MinRow: 0, MinCol: 0, MaxRow: g.K() - 1, MaxCol: g.K() - 1}
	if got := real.CountRange(all, 0, orig.T-1); got != orig.NumPoints() {
		t.Fatalf("real full count = %d, want %d", got, orig.NumPoints())
	}
	if got := private.CountRange(all, 0, orig.T-1); got != syn.NumPoints() {
		t.Fatalf("private full count = %d, want %d", got, syn.NumPoints())
	}

	// Top cells exist and are ordered.
	top := private.TopCells(0, orig.T-1, 5)
	if len(top) == 0 {
		t.Fatal("no hotspots in the release")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("TopCells not ordered")
		}
	}

	// Flow queries run on the release.
	half := Region{MinRow: 0, MinCol: 0, MaxRow: g.K() - 1, MaxCol: g.K()/2 - 1}
	other := Region{MinRow: 0, MinCol: g.K() / 2, MaxRow: g.K() - 1, MaxCol: g.K() - 1}
	if private.Flow(half, other, 0, orig.T-1) < 0 {
		t.Fatal("negative flow")
	}
}
