package retrasyn

// Ablation benches for the design choices DESIGN.md calls out: the
// frequency-oracle protocol (the paper picks OUE), consistency
// post-processing of the estimates (the paper uses raw estimates), and the
// parallel synthesis path (§VII future work). Utility ablations report the
// resulting query error / density error as custom benchmark metrics so a
// single `go test -bench=Ablation` run shows the utility-vs-cost trade-off.

import (
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/core"
	"retrasyn/internal/ldp"
	"retrasyn/internal/metrics"
	"retrasyn/internal/trajectory"
)

// ablationData builds one moderate dataset shared by the ablation benches.
func ablationData(b *testing.B) (*Dataset, *Grid) {
	b.Helper()
	raw, bounds, err := StandardDataset("tdrive", 0.15, 31)
	if err != nil {
		b.Fatal(err)
	}
	g, err := NewGrid(6, bounds)
	if err != nil {
		b.Fatal(err)
	}
	return Discretize(raw, g), g
}

func runEngineAblation(b *testing.B, orig *Dataset, g *Grid, mutate func(*core.Options)) metrics.Report {
	b.Helper()
	opts := core.Options{
		Space:    g,
		Epsilon:  1.0,
		W:        20,
		Division: allocation.Population,
		Lambda:   orig.Stats().AvgLength,
		Seed:     17,
	}
	mutate(&opts)
	e, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	syn, _ := e.Run(trajectory.NewStream(orig), "syn")
	return metrics.Evaluate(orig, syn, g, metrics.Options{Seed: 5})
}

// BenchmarkAblationOracleOUE / OLH / GRR compare the three frequency
// oracles end-to-end: ns/op is the whole run, and the reported
// queryerr/densityerr metrics show why the paper picks OUE over GRR (GRR's
// variance grows with the ~9|C| domain).
func BenchmarkAblationOracleOUE(b *testing.B) { benchOracle(b, core.OracleOUE) }

// BenchmarkAblationOracleOLH benchmarks the OLH oracle end-to-end.
func BenchmarkAblationOracleOLH(b *testing.B) { benchOracle(b, core.OracleOLH) }

// BenchmarkAblationOracleGRR benchmarks the GRR oracle end-to-end.
func BenchmarkAblationOracleGRR(b *testing.B) { benchOracle(b, core.OracleGRR) }

func benchOracle(b *testing.B, kind core.OracleKind) {
	orig, g := ablationData(b)
	var r metrics.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = runEngineAblation(b, orig, g, func(o *core.Options) {
			o.Oracle = kind
			o.OracleMode = core.PerUser
		})
	}
	b.ReportMetric(r.QueryError, "queryerr")
	b.ReportMetric(r.DensityError, "densityerr")
}

// BenchmarkAblationPostProcess sweeps the consistency post-processing
// choices over the same run.
func BenchmarkAblationPostProcessNone(b *testing.B) { benchPostProcess(b, ldp.PostProcessNone) }

// BenchmarkAblationPostProcessClamp benchmarks clamping negatives.
func BenchmarkAblationPostProcessClamp(b *testing.B) { benchPostProcess(b, ldp.PostProcessClamp) }

// BenchmarkAblationPostProcessNormSub benchmarks the simplex projection.
func BenchmarkAblationPostProcessNormSub(b *testing.B) { benchPostProcess(b, ldp.PostProcessNormSub) }

func benchPostProcess(b *testing.B, pp ldp.PostProcess) {
	orig, g := ablationData(b)
	var r metrics.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = runEngineAblation(b, orig, g, func(o *core.Options) { o.PostProcess = pp })
	}
	b.ReportMetric(r.QueryError, "queryerr")
	b.ReportMetric(r.DensityError, "densityerr")
}

// BenchmarkSynthesisSerial / Parallel8 measure the §VII acceleration on a
// large synthetic population (40k streams).
func BenchmarkSynthesisSerial(b *testing.B) { benchSynthWorkers(b, 1) }

// BenchmarkSynthesisParallel8 runs the same workload with 8 workers.
func BenchmarkSynthesisParallel8(b *testing.B) { benchSynthWorkers(b, 8) }

func benchSynthWorkers(b *testing.B, workers int) {
	g, err := NewGrid(10, Bounds{MaxX: 30, MaxY: 30})
	if err != nil {
		b.Fatal(err)
	}
	const pop = 40000
	fw, err := New(Options{
		Grid: g, Epsilon: 1, Window: 10, Lambda: 20,
		SynthesisWorkers: workers, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the engine with one timestamp of uniform events so the model and
	// the synthetic population exist.
	rng := ldp.NewRand(1, 2)
	events := make([]Event, pop)
	for i := range events {
		events[i] = Event{User: i, State: EnterState(Cell(rng.IntN(g.NumCells())))}
	}
	fw.ProcessTimestamp(events, pop)
	move := make([]Event, pop)
	for i := range move {
		c := Cell(rng.IntN(g.NumCells()))
		ns := g.Neighbors(c)
		move[i] = Event{User: i, State: MoveState(c, ns[rng.IntN(len(ns))])}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.ProcessTimestamp(move, pop)
	}
}
