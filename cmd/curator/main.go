// Command curator serves the RetraSyn collection protocol over HTTP: device
// clients announce presence and ship locally perturbed OUE reports, a
// coordinator ticks timestamps, and anyone can fetch the evolving private
// synthetic release. Estimation, model update and synthesis run on the same
// internal/pipeline stages as the in-process engine.
//
// Endpoints (see internal/remote):
//
//	POST /v1/presence   {user, t}
//	POST /v1/plan       {t}
//	GET  /v1/assignment ?user=&t=
//	POST /v1/report     {user, t, ones}
//	POST /v1/finalize   {t, active}
//	GET  /v1/synthetic
//	GET  /v1/stats      — rounds, reports, and per-pipeline-stage wall time
//
// Usage:
//
//	curator -addr :8080 -k 6 -boundsMax 30 -eps 1.0 -w 20 -lambda 13.6
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"retrasyn/internal/allocation"
	"retrasyn/internal/grid"
	"retrasyn/internal/remote"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		k        = flag.Int("k", 6, "grid granularity K")
		boundMin = flag.Float64("boundsMin", 0, "spatial lower bound (both axes)")
		boundMax = flag.Float64("boundsMax", 30, "spatial upper bound (both axes)")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε")
		w        = flag.Int("w", 20, "window size w")
		lambda   = flag.Float64("lambda", 13.6, "synthesis termination factor λ")
		division = flag.String("division", "population", `"budget" or "population"`)
		seed     = flag.Uint64("seed", 2024, "curator randomness seed")
	)
	flag.Parse()

	g, err := grid.New(*k, grid.Bounds{MinX: *boundMin, MinY: *boundMin, MaxX: *boundMax, MaxY: *boundMax})
	if err != nil {
		log.Fatal(err)
	}
	div := allocation.Population
	switch *division {
	case "population":
	case "budget":
		div = allocation.Budget
	default:
		log.Fatalf("curator: unknown division %q", *division)
	}
	cur, err := remote.NewCurator(remote.CuratorConfig{
		Grid: g, Epsilon: *eps, W: *w, Division: div, Lambda: *lambda, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           remote.NewHandler(cur),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("curator: serving w-event ε-LDP collection on %s (ε=%.2f w=%d K=%d, %s division)\n",
		*addr, *eps, *w, *k, div)
	log.Fatal(srv.ListenAndServe())
}
