// Command curator serves the RetraSyn collection protocol over HTTP: device
// clients announce presence and ship locally perturbed OUE reports —
// individually or in gateway-aggregated batches — a coordinator ticks
// timestamps, and anyone can fetch the evolving private synthetic release.
// Estimation, model update and synthesis run on the same internal/pipeline
// stages as the in-process engine.
//
// The curator is durable: -checkpoint names a state file that is loaded on
// boot (when present) and written on graceful shutdown (SIGINT/SIGTERM), so
// a restarted curator resumes the stream with releases bit-identical to an
// uninterrupted run. The same state is served live on /v1/snapshot and
// accepted on /v1/restore for migration without a restart.
//
// Endpoints (see internal/remote):
//
//	POST /v1/presence   {user, t} or {t, users: [...]} (gateway batch)
//	POST /v1/plan       {t}
//	GET  /v1/assignment ?user=&t=
//	POST /v1/assignments {t, users: [...]} — batched assignment poll
//	POST /v1/report     {user, t, ones} or {t, reports: [{user, ones}...]}
//	POST /v1/finalize   {t, active}
//	GET  /v1/synthetic
//	GET  /v1/stats      — rounds, reports, stage wall time, layout status
//	GET  /v1/snapshot   — full curator state (checkpoint)
//	POST /v1/restore    — load a checkpoint
//	POST /v1/relayout   {force} — rebuild the layout from the released stream
//	                    and migrate live state onto it (see -rediscretize-every)
//	GET  /metrics       — Prometheus text exposition of the curator's
//	                    observability series (see the README's catalog)
//
// Observability: -trace-rounds FILE writes one JSONL event per finalized
// round (stage latencies, report counts, budget stats, relayout decisions);
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	curator -addr :8080 -k 6 -boundsMax 30 -eps 1.0 -w 20 -lambda 13.6 \
//	        -checkpoint /var/lib/retrasyn/curator.ckpt
//	curator -spatial quadtree -density historical.csv -max-leaves 64 \
//	        -boundsMax 30 -eps 1.0 -w 20 -lambda 13.6
//	curator -spatial geofence -fence districts.geojson -eps 1.0 -w 20 -lambda 13.6
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"retrasyn"
	"retrasyn/internal/allocation"
	"retrasyn/internal/geofence"
	"retrasyn/internal/grid"
	"retrasyn/internal/relayout"
	"retrasyn/internal/remote"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		k           = flag.Int("k", 6, "grid granularity K (-spatial uniform)")
		boundMin    = flag.Float64("boundsMin", 0, "spatial lower bound (both axes)")
		boundMax    = flag.Float64("boundsMax", 30, "spatial upper bound (both axes)")
		eps         = flag.Float64("eps", 1.0, "privacy budget ε")
		w           = flag.Int("w", 20, "window size w")
		lambda      = flag.Float64("lambda", 13.6, "synthesis termination factor λ")
		division    = flag.String("division", "population", `"budget" or "population"`)
		spatialKind = flag.String("spatial", "uniform", `spatial discretization: "uniform" (K×K grid), "quadtree" (density-adaptive; requires -density) or "geofence" (polygonal; requires -fence)`)
		maxLeaves   = flag.Int("max-leaves", 64, "quadtree leaf budget (-spatial quadtree)")
		density     = flag.String("density", "", "public/historical raw-trajectory CSV that seeds the quadtree density sketch (-spatial quadtree)")
		fence       = flag.String("fence", "", "GeoJSON fence file whose polygons become the cells (-spatial geofence)")
		seed        = flag.Uint64("seed", 2024, "curator randomness seed")
		checkpoint  = flag.String("checkpoint", "", "state file loaded on boot and written on graceful shutdown")
		drainGrace  = flag.Duration("drainGrace", 10*time.Second, "graceful-shutdown grace for in-flight requests")
		rediscEvery = flag.Int("rediscretize-every", 0, "rebuild the spatial layout from the released stream every N windows at finalize and migrate when it drifted (0 = frozen layout; POST /v1/relayout still works)")
		relayoutThr = flag.Float64("relayout-threshold", 0, "minimum layout distance in [0,1) for a rebuilt layout to replace the current one (0 = default 0.1)")
		monitorWin  = flag.Int("monitor-window", 0, "utility monitor release-sketch length in timestamps (0 = default: w)")
		trigger     = flag.String("trigger", "", `relayout trigger policy: "geometric" (default), "degradation-or" or "degradation-and" (combine the distance threshold with utility-monitor alarms)`)
		traceRounds = flag.String("trace-rounds", "", "write one JSONL trace event per finalized round to this file")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	if err := validateFlags(*k, *eps, *w, *lambda, *boundMin, *boundMax, *spatialKind, *maxLeaves, *density, *fence, *drainGrace); err != nil {
		log.Fatalf("curator: %v", err)
	}
	space, err := buildSpace(*spatialKind, *k, *boundMin, *boundMax, *maxLeaves, *density, *fence)
	if err != nil {
		log.Fatalf("curator: %v", err)
	}
	div := allocation.Population
	switch *division {
	case "population":
	case "budget":
		div = allocation.Budget
	default:
		log.Fatalf("curator: unknown -division %q (want \"budget\" or \"population\")", *division)
	}
	if *rediscEvery < 0 {
		log.Fatalf("curator: -rediscretize-every must be ≥ 0, got %d", *rediscEvery)
	}
	if *relayoutThr < 0 || *relayoutThr >= 1 {
		log.Fatalf("curator: -relayout-threshold must be in [0,1), got %v", *relayoutThr)
	}
	if *monitorWin < 0 {
		log.Fatalf("curator: -monitor-window must be ≥ 0, got %d", *monitorWin)
	}
	policy := relayout.TriggerPolicy(*trigger)
	if err := policy.Validate(); err != nil {
		log.Fatalf("curator: -trigger: %v", err)
	}
	cur, err := remote.NewCurator(remote.CuratorConfig{
		Space: space, Epsilon: *eps, W: *w, Division: div, Lambda: *lambda, Seed: *seed,
		RediscretizeEvery: *rediscEvery, RelayoutThreshold: *relayoutThr,
		MonitorWindow: *monitorWin, TriggerPolicy: policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *checkpoint != "" {
		if err := loadCheckpoint(cur, *checkpoint); err != nil {
			log.Fatal(err)
		}
	}

	// Round-processing and relayout failures surface on stderr with
	// timestamp context (they also count on curator.round_errors /
	// curator.relayout_errors in the registry).
	cur.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	if *traceRounds != "" {
		tf, err := os.OpenFile(*traceRounds, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("curator: open -trace-rounds: %v", err)
		}
		defer tf.Close()
		cur.SetTracer(slog.New(slog.NewJSONHandler(tf, nil)))
		fmt.Printf("curator: tracing rounds to %s\n", *traceRounds)
	}

	handler := remote.NewHandler(cur)
	if *pprofOn {
		// Wrap the protocol mux so /debug/pprof/ resolves without exposing
		// the default serve mux.
		top := http.NewServeMux()
		top.HandleFunc("/debug/pprof/", pprof.Index)
		top.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		top.HandleFunc("/debug/pprof/profile", pprof.Profile)
		top.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		top.HandleFunc("/debug/pprof/trace", pprof.Trace)
		top.Handle("/", handler)
		handler = top
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("curator: serving w-event ε-LDP collection on %s (ε=%.2f w=%d, %s division, %d cells / %d states via %s)\n",
		*addr, *eps, *w, div, space.NumCells(), cur.Domain().Size(), *spatialKind)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight handlers, then
	// checkpoint the quiesced state.
	fmt.Println("curator: shutting down...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("curator: drain: %v", err)
	}
	if *checkpoint != "" {
		if err := writeCheckpoint(cur, *checkpoint); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("curator: state checkpointed to %s\n", *checkpoint)
	}
}

// validateFlags rejects unusable configurations up front with errors that
// name the flag and the accepted range, instead of panicking mid-boot or
// silently falling back to defaults.
func validateFlags(k int, eps float64, w int, lambda, boundMin, boundMax float64, spatialKind string, maxLeaves int, density, fence string, drainGrace time.Duration) error {
	if !(eps > 0) {
		return fmt.Errorf("-eps must be > 0, got %v", eps)
	}
	if w < 1 {
		return fmt.Errorf("-w must be ≥ 1, got %d", w)
	}
	if !(lambda > 0) {
		return fmt.Errorf("-lambda must be > 0, got %v", lambda)
	}
	if boundMax <= boundMin {
		return fmt.Errorf("-boundsMax (%v) must exceed -boundsMin (%v)", boundMax, boundMin)
	}
	if drainGrace <= 0 {
		return fmt.Errorf("-drainGrace must be positive, got %v", drainGrace)
	}
	switch spatialKind {
	case "uniform":
		if k < 1 {
			return fmt.Errorf("-k must be ≥ 1, got %d", k)
		}
	case "quadtree":
		if maxLeaves < 1 {
			return fmt.Errorf("-max-leaves must be ≥ 1, got %d", maxLeaves)
		}
		if density == "" {
			return fmt.Errorf("-spatial quadtree needs -density, a public/historical raw-trajectory CSV that seeds the density sketch")
		}
	case "geofence":
		if fence == "" {
			return fmt.Errorf("-spatial geofence needs -fence, a GeoJSON file whose polygons become the cells")
		}
	default:
		return fmt.Errorf("unknown -spatial %q (want \"uniform\", \"quadtree\" or \"geofence\")", spatialKind)
	}
	return nil
}

// buildSpace constructs the configured spatial discretization.
func buildSpace(kind string, k int, boundMin, boundMax float64, maxLeaves int, density, fence string) (spatial.Discretizer, error) {
	b := spatial.Bounds{MinX: boundMin, MinY: boundMin, MaxX: boundMax, MaxY: boundMax}
	if kind == "uniform" {
		return grid.New(k, b)
	}
	if kind == "geofence" {
		f, err := os.Open(fence)
		if err != nil {
			return nil, fmt.Errorf("open -fence: %w", err)
		}
		defer f.Close()
		polys, err := geofence.ParseFence(f)
		if err != nil {
			return nil, fmt.Errorf("-fence %s: %w", fence, err)
		}
		gf, err := geofence.NewFence(polys)
		if err != nil {
			return nil, fmt.Errorf("-fence %s: %w", fence, err)
		}
		return gf, nil
	}
	f, err := os.Open(density)
	if err != nil {
		return nil, fmt.Errorf("open -density: %w", err)
	}
	defer f.Close()
	raw, err := trajectory.ReadRaw(f)
	if err != nil {
		return nil, fmt.Errorf("parse -density %s: %w", density, err)
	}
	pts := retrasyn.DensitySketch(raw)
	if len(pts) == 0 {
		return nil, fmt.Errorf("-density %s holds no points; the quadtree needs a non-empty sketch", density)
	}
	return spatial.NewQuadtree(b, pts, spatial.QuadtreeOptions{MaxLeaves: maxLeaves})
}

// loadCheckpoint restores the curator from a state file; a missing file is a
// fresh start, not an error.
func loadCheckpoint(cur *remote.Curator, path string) error {
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("curator: read checkpoint: %w", err)
	}
	var st remote.CuratorState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("curator: decode checkpoint %s: %w", path, err)
	}
	if err := cur.Restore(&st); err != nil {
		return fmt.Errorf("curator: restore checkpoint %s: %w", path, err)
	}
	fmt.Printf("curator: resumed from %s\n", path)
	return nil
}

// writeCheckpoint snapshots the curator into the state file atomically
// (write-then-rename), so a crash mid-write never corrupts the previous
// checkpoint.
func writeCheckpoint(cur *remote.Curator, path string) error {
	st, err := cur.Snapshot()
	if err != nil {
		return fmt.Errorf("curator: snapshot: %w", err)
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("curator: encode checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o600); err != nil {
		return fmt.Errorf("curator: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("curator: commit checkpoint: %w", err)
	}
	return nil
}
