package main

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// TestHistBuckets pins the bucket geometry: band edges land where the
// scheme says, floors invert bucketOf, and indices stay in range across
// the whole int64 span.
func TestHistBuckets(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 127, 1 << 20, 1<<62 + 12345} {
		idx := bucketOf(v)
		if idx < 0 || idx >= 960 {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		floor := bucketFloor(idx)
		if floor > v {
			t.Fatalf("bucketFloor(bucketOf(%d)) = %d exceeds the value", v, floor)
		}
		// ~3% relative error bound (one sub-bucket width).
		if v >= 32 && float64(v-floor) > float64(v)/16 {
			t.Fatalf("bucket floor %d too far below %d", floor, v)
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

// TestHistQuantiles checks estimated quantiles against exact ones on a
// random sample: within the structure's 2/16 relative error.
func TestHistQuantiles(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var h hist
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = rng.Int64N(2_000_000) // up to 2s in µs
		h.observe(time.Duration(vals[i]) * time.Microsecond)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := h.quantile(q)
		if diff := float64(got - exact); diff < -float64(exact)/8 || diff > float64(exact)/8 {
			t.Fatalf("q=%.2f: estimate %d vs exact %d", q, got, exact)
		}
	}
	s := h.summary()
	if s.Count != 10000 || s.MaxUS != vals[len(vals)-1] || s.MeanUS <= 0 {
		t.Fatalf("summary %+v inconsistent", s)
	}
}
