package main

import "retrasyn/internal/obs"

// The HDR-style log-bucketed latency histogram that used to live here was
// promoted to internal/obs so the curator's metrics registry shares it. The
// aliases keep loadgen's report schema (BENCH_replay.json) byte-identical:
// obs.Summary carries the exact JSON field set latencySummary always had,
// and obs.Histogram uses the same 960-bucket layout.
type hist = obs.Histogram

type latencySummary = obs.Summary
