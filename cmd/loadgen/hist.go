package main

import (
	"math/bits"
	"sync"
	"time"
)

// hist is an HDR-style log-bucketed latency histogram: 16 sub-buckets per
// power of two (the first band holds 32), so quantile estimates carry at
// most ~3% relative error while the whole structure is a fixed 960-entry
// array — no allocation per sample, safe to hammer from every gateway
// goroutine. Values are microseconds.
type hist struct {
	mu     sync.Mutex
	counts [960]int64
	n      int64
	sum    int64
	max    int64
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	k := bits.Len64(uint64(v)) - 5
	if k < 0 {
		k = 0
	}
	idx := 16*k + int(v>>uint(k))
	if idx >= 960 {
		idx = 959
	}
	return idx
}

// bucketFloor returns the smallest value mapping to bucket idx — the
// conservative estimate quantiles report.
func bucketFloor(idx int) int64 {
	if idx < 32 {
		return int64(idx)
	}
	k := idx/16 - 1
	return int64(idx-16*k) << uint(k)
}

func (h *hist) observe(d time.Duration) {
	v := d.Microseconds()
	h.mu.Lock()
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// quantile returns the value at quantile q (0 < q ≤ 1) in microseconds.
func (h *hist) quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := int64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketFloor(i)
		}
	}
	return h.max
}

// latencySummary is the JSON face of a histogram.
type latencySummary struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P90US  int64   `json:"p90_us"`
	P95US  int64   `json:"p95_us"`
	P99US  int64   `json:"p99_us"`
	MaxUS  int64   `json:"max_us"`
}

func (h *hist) summary() latencySummary {
	s := latencySummary{
		P50US: h.quantile(0.50),
		P90US: h.quantile(0.90),
		P95US: h.quantile(0.95),
		P99US: h.quantile(0.99),
	}
	h.mu.Lock()
	s.Count, s.MaxUS = h.n, h.max
	if h.n > 0 {
		s.MeanUS = float64(h.sum) / float64(h.n)
	}
	h.mu.Unlock()
	return s
}
