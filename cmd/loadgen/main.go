// Command loadgen replays a RetraSyn transition-id stream as live traffic
// and measures what the collection stack sustains. In "http" mode it stands
// in for the whole device population: concurrent gateway shards announce
// presence, poll sampling assignments, perturb the sampled users' states
// locally (OUE) and ship batched reports to a running curator while a
// coordinator ticks Plan/Finalize — the full per-timestamp protocol at ×K
// wall-clock speed. In "ingest" mode it drives an in-process engine through
// the service ingest layer instead, exercising the backpressure path.
//
// The run ends with a loss ledger (every emitted event accounted for by the
// curator's own counters) and a BENCH_replay.json of sustained throughput
// and p50/p90/p95/p99 latencies per protocol stage.
//
// Usage:
//
//	curator -addr :8080 -k 6 -boundsMax 30 -eps 1.0 -w 20 -lambda 13.6 &
//	datagen -dataset sanjoaquin -scale 4 -transitions-out sj_transition_id.xz
//	loadgen -data sj_transition_id.xz -curator http://localhost:8080 \
//	        -gateways 8 -speed 100 -out BENCH_replay.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"retrasyn"
	"retrasyn/internal/dataset"
	"retrasyn/internal/ldp"
	"retrasyn/internal/remote"
	"retrasyn/internal/service"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

func main() {
	var (
		data     = flag.String("data", "", "transition-id stream to replay (.xz or plain; required)")
		mode     = flag.String("mode", "http", `"http" (replay against a live curator) or "ingest" (drive an in-process engine through the ingest layer)`)
		curator  = flag.String("curator", "http://localhost:8080", "curator base URL (http mode)")
		gateways = flag.Int("gateways", 4, "concurrent gateway shards")
		speed    = flag.Float64("speed", 0, "wall-clock speedup ×K over -tick (0 = unpaced: as fast as the stack sustains)")
		tick     = flag.Duration("tick", time.Second, "logical duration of one timestamp at ×1")
		k        = flag.Int("k", 6, "grid granularity K (http mode: must match the curator)")
		boundMin = flag.Float64("boundsMin", 0, "spatial lower bound (both axes)")
		boundMax = flag.Float64("boundsMax", 30, "spatial upper bound (both axes)")
		seed     = flag.Uint64("seed", 2024, "perturbation seed (and engine seed in ingest mode)")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε (ingest mode)")
		w        = flag.Int("w", 20, "window size w (ingest mode)")
		lambda   = flag.Float64("lambda", 13.6, "synthesis termination factor λ (ingest mode)")
		shards   = flag.Int("shards", 1, "engine shards (ingest mode)")
		wire     = flag.String("wire", "binary", `report wire encoding in http mode: "binary" (framed application/x-retrasyn) or "json"`)
		scrape   = flag.Bool("scrape", false, "poll the curator's /metrics before and after the replay (http mode) and embed the series deltas in the report")
		out      = flag.String("out", "BENCH_replay.json", "benchmark report path")
		maxBuf   = flag.Int("max-pending", 0, "ingest buffer bound in events (ingest mode; 0 = service default)")
		loss     = flag.Bool("allow-loss", false, "exit 0 even when the loss ledger does not balance")
	)
	flag.Parse()
	if *data == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	if *gateways < 1 {
		fatal(fmt.Errorf("-gateways must be ≥ 1, got %d", *gateways))
	}
	if *speed < 0 {
		fatal(fmt.Errorf("-speed must be ≥ 0, got %v", *speed))
	}
	g, err := retrasyn.NewGrid(*k, retrasyn.Bounds{MinX: *boundMin, MinY: *boundMin, MaxX: *boundMax, MaxY: *boundMax})
	if err != nil {
		fatal(err)
	}
	rc, err := dataset.Open(*data)
	if err != nil {
		fatal(err)
	}
	rd, err := dataset.NewReader(rc)
	if err != nil {
		rc.Close()
		fatal(err)
	}

	var interval time.Duration
	if *speed > 0 {
		interval = time.Duration(float64(*tick) / *speed)
	}
	r := &run{
		reader:   rd,
		space:    g,
		dom:      transition.NewDomain(g),
		gateways: *gateways,
		interval: interval,
		seed:     *seed,
		users:    make(map[int]struct{}),
		hists:    map[string]*hist{},
	}
	report := benchReport{
		Dataset: rd.Name(), Mode: *mode, Timestamps: rd.T(),
		Gateways: *gateways, Speed: *speed, TickMS: float64(*tick) / float64(time.Millisecond),
	}

	var wireMode remote.WireMode
	switch *wire {
	case "binary":
		wireMode = remote.WireBinary
	case "json":
		wireMode = remote.WireJSON
	default:
		fatal(fmt.Errorf("unknown -wire %q (want \"binary\" or \"json\")", *wire))
	}

	switch *mode {
	case "http":
		report.Wire = *wire
		r.scrape = *scrape
		err = r.replayHTTP(*curator, wireMode, &report)
	case "ingest":
		err = r.replayIngest(retrasyn.Options{
			Grid: g, Epsilon: *eps, Window: *w, Lambda: *lambda, Shards: *shards, Seed: *seed,
		}, *maxBuf, &report)
	default:
		err = fmt.Errorf("unknown -mode %q (want \"http\" or \"ingest\")", *mode)
	}
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	r.finish(&report)
	blob, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("loadgen: %s mode, %d timestamps, %d users, %d events in %.2fs (%.0f events/s, %.0f reports/s)\n",
		report.Mode, report.Timestamps, report.Users, report.EventsEmitted,
		report.DurationSec, report.EventsPerSec, report.ReportsPerSec)
	if rl, ok := report.Latency["round"]; ok {
		fmt.Printf("loadgen: round latency p50=%s p99=%s max=%s; %d/%d rounds behind schedule\n",
			us(rl.P50US), us(rl.P99US), us(rl.MaxUS), report.RoundsBehind, report.Timestamps)
	}
	if report.BytesPerReport > 0 {
		fmt.Printf("loadgen: wire %s, %d report bytes in (%.1f bytes/report)\n",
			report.Wire, report.ReportBytesIn, report.BytesPerReport)
	}
	if len(report.ReleaseDivergence) > 0 {
		fmt.Printf("loadgen: release divergence js=%.4f l1=%.4f at end of run\n",
			report.ReleaseDivergence["js"], report.ReleaseDivergence["l1"])
	}
	fmt.Printf("loadgen: report written to %s\n", *out)
	if !report.ZeroLoss {
		fmt.Fprintf(os.Stderr, "loadgen: LOSS DETECTED — the ledger does not balance (see %s)\n", *out)
		if !*loss {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

func us(v int64) time.Duration { return time.Duration(v) * time.Microsecond }

// benchReport is the BENCH_replay.json schema.
type benchReport struct {
	Dataset    string  `json:"dataset"`
	Mode       string  `json:"mode"`
	Timestamps int     `json:"timestamps"`
	Users      int     `json:"users"`
	Gateways   int     `json:"gateways"`
	Speed      float64 `json:"speed"`
	TickMS     float64 `json:"tick_ms"`
	// Wire is the report encoding used in http mode ("binary" or "json"),
	// with the curator-measured request bytes the /v1/report endpoint
	// ingested — the ledger that makes wire regressions visible per run.
	Wire           string  `json:"wire,omitempty"`
	ReportBytesIn  int64   `json:"report_bytes_in,omitempty"`
	BytesPerReport float64 `json:"bytes_per_report,omitempty"`

	DurationSec   float64 `json:"duration_sec"`
	EventsEmitted int64   `json:"events_emitted"`
	EventsSkipped int64   `json:"events_skipped"`
	ReportsSent   int64   `json:"reports_sent"`
	EventsPerSec  float64 `json:"events_per_sec"`
	ReportsPerSec float64 `json:"reports_per_sec"`

	// Pacing: rounds whose scheduled slot had already fully elapsed when
	// they started, and the worst lag behind schedule.
	RoundsBehind int64   `json:"rounds_behind"`
	MaxLagMS     float64 `json:"max_lag_ms"`

	// ZeroLoss is the ledger verdict: every emitted event acknowledged by
	// the receiving side's own counters, nothing skipped, nothing dropped.
	ZeroLoss bool `json:"zero_loss"`

	Latency map[string]latencySummary `json:"latency"`

	// MetricsDelta (http mode with -scrape) is end-minus-start over the
	// curator's /metrics scalar samples — counters, gauges and histogram
	// _sum/_count, keyed by the exposition series line.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	// ReleaseDivergence (http mode with -scrape) is the utility monitor's
	// end-of-run released-vs-estimated divergence gauges: the
	// monitor.release_divergence{metric=...} values at the final scrape
	// (absolute, not deltas — divergence is a level, not a rate).
	ReleaseDivergence map[string]float64 `json:"release_divergence,omitempty"`

	Curator *remote.StatsSnapshot `json:"curator,omitempty"`
	Ingest  *service.Stats        `json:"ingest,omitempty"`
}

// run carries the replay state shared by both modes.
type run struct {
	reader   *dataset.Reader
	space    retrasyn.Discretizer
	dom      *transition.Domain
	gateways int
	interval time.Duration
	seed     uint64
	scrape   bool

	start         time.Time
	eventsEmitted int64
	eventsSkipped int64
	reportsSent   int64
	roundsBehind  int64
	maxLag        time.Duration
	users         map[int]struct{}
	hists         map[string]*hist
}

func (r *run) hist(name string) *hist {
	h, ok := r.hists[name]
	if !ok {
		h = &hist{}
		r.hists[name] = h
	}
	return h
}

// pace sleeps until timestamp t's scheduled slot (no-op when unpaced) and
// records how far behind schedule the replay is running.
func (r *run) pace(t int) {
	if r.interval == 0 {
		return
	}
	sched := r.start.Add(time.Duration(t) * r.interval)
	lag := time.Since(sched)
	if lag <= 0 {
		time.Sleep(-lag)
		return
	}
	if lag > r.interval {
		r.roundsBehind++
	}
	if lag > r.maxLag {
		r.maxLag = lag
	}
}

func (r *run) finish(report *benchReport) {
	report.DurationSec = time.Since(r.start).Seconds()
	report.Users = len(r.users)
	report.EventsEmitted = r.eventsEmitted
	report.EventsSkipped = r.eventsSkipped
	report.ReportsSent = r.reportsSent
	report.RoundsBehind = r.roundsBehind
	report.MaxLagMS = float64(r.maxLag) / float64(time.Millisecond)
	if report.DurationSec > 0 {
		report.EventsPerSec = float64(r.eventsEmitted) / report.DurationSec
		report.ReportsPerSec = float64(r.reportsSent) / report.DurationSec
	}
	report.Latency = make(map[string]latencySummary, len(r.hists))
	for name, h := range r.hists {
		report.Latency[name] = h.Summary()
	}
}

// shard splits a timestamp's events across the gateways by user ID, so a
// user's traffic always flows through the same gateway.
func (r *run) shard(events []trajectory.Event) ([][]int, [][]transition.State, int) {
	users := make([][]int, r.gateways)
	states := make([][]transition.State, r.gateways)
	active := 0
	for _, ev := range events {
		i := ev.User % r.gateways
		users[i] = append(users[i], ev.User)
		states[i] = append(states[i], ev.State)
		if ev.State.Kind != transition.Quit {
			active++
		}
		r.users[ev.User] = struct{}{}
	}
	return users, states, active
}

// eachGateway runs fn for every gateway shard concurrently and returns the
// first error.
func eachGateway(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replayHTTP drives the full wire protocol against a live curator.
func (r *run) replayHTTP(baseURL string, wire remote.WireMode, report *benchReport) error {
	gws := make([]*remote.Gateway, r.gateways)
	rngs := make([]ldp.Rand, r.gateways)
	oracles := make([]map[float64]*ldp.OUE, r.gateways)
	for i := range gws {
		gws[i] = remote.NewGateway(baseURL, nil)
		gws[i].SetWire(wire)
		rngs[i] = ldp.NewRand(r.seed+uint64(i), r.seed^0x9e3779b97f4a7c15)
		oracles[i] = map[float64]*ldp.OUE{}
	}
	co := remote.NewCoordinator(baseURL, nil)
	d := r.dom.Size()
	progressEvery := r.reader.T() / 10
	if progressEvery < 1 {
		progressEvery = 1
	}

	var scrapeStart map[string]float64
	if r.scrape {
		var err error
		if scrapeStart, err = scrapeMetrics(baseURL); err != nil {
			return fmt.Errorf("pre-run scrape: %w", err)
		}
	}

	r.start = time.Now()
	for {
		batch, err := r.reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		t := batch.T
		r.pace(t)
		events, skipped := batch.Events(r.space, r.dom)
		r.eventsEmitted += int64(len(events))
		r.eventsSkipped += int64(skipped)
		users, states, active := r.shard(events)

		roundStart := time.Now()
		err = eachGateway(r.gateways, func(i int) error {
			start := time.Now()
			if err := gws[i].AnnouncePresence(users[i], t); err != nil {
				return err
			}
			r.hist("presence").Observe(time.Since(start))
			return nil
		})
		if err != nil {
			return fmt.Errorf("t=%d presence: %w", t, err)
		}
		if err := co.Plan(t); err != nil {
			return fmt.Errorf("t=%d: %w", t, err)
		}
		sent := make([]int64, r.gateways) // per-gateway report counts
		err = eachGateway(r.gateways, func(i int) error {
			if len(users[i]) == 0 {
				return nil
			}
			start := time.Now()
			as, err := gws[i].Assignments(users[i], t)
			if err != nil {
				return err
			}
			r.hist("assignments").Observe(time.Since(start))
			var reports []remote.BatchReport
			var roundEps float64 // the sampled users' ε (uniform within a round)
			for j, a := range as {
				if !a.Report {
					continue
				}
				roundEps = a.Epsilon
				idx, ok := r.dom.Index(states[i][j])
				if !ok {
					return fmt.Errorf("state %v for user %d escaped the domain filter", states[i][j], users[i][j])
				}
				oracle, ok := oracles[i][a.Epsilon]
				if !ok {
					oracle, err = ldp.NewOUE(d, a.Epsilon)
					if err != nil {
						return err
					}
					oracles[i][a.Epsilon] = oracle
				}
				reports = append(reports, remote.BatchReport{User: users[i][j], Ones: oracle.Perturb(rngs[i], idx)})
			}
			if len(reports) == 0 {
				return nil
			}
			start = time.Now()
			if ldp.PreferPacked(d, roundEps) {
				packed, err := remote.PackReportBatch(reports, d)
				if err != nil {
					return err
				}
				err = gws[i].ReportPacked(t, d, packed)
				if err != nil {
					return err
				}
			} else if err := gws[i].ReportBatch(t, reports); err != nil {
				return err
			}
			r.hist("report").Observe(time.Since(start))
			sent[i] = int64(len(reports))
			return nil
		})
		if err != nil {
			return fmt.Errorf("t=%d collect: %w", t, err)
		}
		for _, n := range sent {
			r.reportsSent += n
		}
		if err := co.Finalize(t, active); err != nil {
			return fmt.Errorf("t=%d: %w", t, err)
		}
		r.hist("round").Observe(time.Since(roundStart))

		if (t+1)%progressEvery == 0 {
			st, err := co.Stats()
			if err != nil {
				return fmt.Errorf("t=%d stats poll: %w", t, err)
			}
			elapsed := time.Since(r.start).Seconds()
			fmt.Fprintf(os.Stderr, "loadgen: t=%d/%d, curator at %d rounds / %d reports (%.0f reports/s)\n",
				t+1, r.reader.T(), st.Rounds, st.Reports, float64(st.Reports)/elapsed)
		}
	}

	st, err := co.Stats()
	if err != nil {
		return err
	}
	report.Curator = &st
	if r.scrape {
		scrapeEnd, err := scrapeMetrics(baseURL)
		if err != nil {
			return fmt.Errorf("post-run scrape: %w", err)
		}
		report.MetricsDelta = metricsDelta(scrapeStart, scrapeEnd)
		report.ReleaseDivergence = releaseDivergence(scrapeEnd)
	}
	if wb, ok := st.Wire["/v1/report"]; ok && r.reportsSent > 0 {
		report.ReportBytesIn = wb.BytesIn
		report.BytesPerReport = float64(wb.BytesIn) / float64(r.reportsSent)
	}
	report.ZeroLoss = r.eventsSkipped == 0 &&
		st.PresenceEvents == r.eventsEmitted &&
		int64(st.Reports) == r.reportsSent &&
		st.Rounds == r.reader.T()
	return nil
}

// replayIngest drives the stream through the service ingest layer over an
// in-process engine, with each gateway shard acting as a producer.
func (r *run) replayIngest(opts retrasyn.Options, maxPending int, report *benchReport) error {
	fw, err := retrasyn.New(opts)
	if err != nil {
		return err
	}
	in := service.New(fw, service.Options{MaxPendingEvents: maxPending})
	shardEvents := make([][]trajectory.Event, r.gateways)

	r.start = time.Now()
	for {
		batch, err := r.reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			in.Close()
			return err
		}
		t := batch.T
		r.pace(t)
		events, skipped := batch.Events(r.space, r.dom)
		r.eventsEmitted += int64(len(events))
		r.eventsSkipped += int64(skipped)
		for i := range shardEvents {
			shardEvents[i] = shardEvents[i][:0]
		}
		active := 0
		for _, ev := range events {
			i := ev.User % r.gateways
			shardEvents[i] = append(shardEvents[i], ev)
			if ev.State.Kind != transition.Quit {
				active++
			}
			r.users[ev.User] = struct{}{}
		}

		roundStart := time.Now()
		err = eachGateway(r.gateways, func(i int) error {
			start := time.Now()
			if err := in.Submit(t, shardEvents[i]); err != nil {
				return err
			}
			r.hist("submit").Observe(time.Since(start))
			return nil
		})
		if err != nil {
			in.Close()
			return fmt.Errorf("t=%d submit: %w", t, err)
		}
		start := time.Now()
		if err := in.Seal(t, active); err != nil {
			in.Close()
			return fmt.Errorf("t=%d: %w", t, err)
		}
		r.hist("seal").Observe(time.Since(start))
		r.hist("round").Observe(time.Since(roundStart))
	}
	if err := in.Close(); err != nil {
		return err
	}
	st := in.Stats()
	report.Ingest = &st
	report.ZeroLoss = r.eventsSkipped == 0 &&
		st.EventsAccepted == r.eventsEmitted &&
		st.EventsDropped == 0 &&
		st.TimestampsProcessed == int64(r.reader.T())
	return nil
}
