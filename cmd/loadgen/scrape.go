package main

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// scrapeMetrics polls the curator's Prometheus exposition and returns the
// sample values keyed by the full series line (name plus label set). Comment
// lines and per-bucket histogram samples are skipped — the replay report
// embeds scalar deltas (counters, gauges, histogram _sum/_count), not whole
// bucket vectors.
func scrapeMetrics(baseURL string) (map[string]float64, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape /metrics: %s", resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; the series key is
		// everything before it. Label values produced by the curator never
		// contain spaces, but splitting from the right keeps this robust if
		// one ever does.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			continue
		}
		key, valStr := line[:cut], line[cut+1:]
		name := key
		if b := strings.IndexByte(name, '{'); b >= 0 {
			name = name[:b]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// releaseDivergence extracts the utility monitor's end-of-run divergence
// gauges from a scrape, keyed by the metric label ("js", "l1"). Empty when
// the curator exposes no monitor series.
func releaseDivergence(scrape map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for key, v := range scrape {
		name, rest, ok := strings.Cut(key, "{")
		if !ok || name != "monitor_release_divergence" {
			continue
		}
		if m, ok := strings.CutPrefix(rest, `metric="`); ok {
			if metric, _, ok := strings.Cut(m, `"`); ok {
				out[metric] = v
			}
		}
	}
	return out
}

// metricsDelta subtracts the start scrape from the end scrape. Series that
// appear only at the end (registered lazily mid-run) delta against zero;
// series missing from the end scrape are dropped.
func metricsDelta(start, end map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(end))
	for k, v := range end {
		out[k] = v - start[k]
	}
	return out
}
