package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

const scrapeFixture = `# TYPE curator_rounds counter
curator_rounds 42
# TYPE budget_window_eps_micro histogram
budget_window_eps_micro_bucket{le="1"} 0
budget_window_eps_micro_bucket{le="+Inf"} 5
budget_window_eps_micro_sum 900000
budget_window_eps_micro_count 5
# TYPE monitor_release_divergence gauge
monitor_release_divergence{metric="js"} 0.042
monitor_release_divergence{metric="l1"} 0.31
# TYPE monitor_alarm gauge
monitor_alarm{signal="divergence"} 0
`

// TestScrapeKeepsHistogramScalars pins what the replay report depends on:
// per-bucket samples are dropped, but a histogram's _sum and _count survive
// the scrape so the report can embed their deltas.
func TestScrapeKeepsHistogramScalars(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(scrapeFixture))
	}))
	defer srv.Close()

	got, err := scrapeMetrics(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"curator_rounds":                          42,
		"budget_window_eps_micro_sum":             900000,
		"budget_window_eps_micro_count":           5,
		`monitor_release_divergence{metric="js"}`: 0.042,
	} {
		if got[key] != want {
			t.Errorf("scrape[%s] = %v, want %v", key, got[key], want)
		}
	}
	for key := range got {
		if key == `budget_window_eps_micro_bucket{le="+Inf"}` || key == `budget_window_eps_micro_bucket{le="1"}` {
			t.Errorf("bucket sample %s leaked into the scrape", key)
		}
	}
}

// TestReleaseDivergence pins the monitor-gauge extraction the replay summary
// prints.
func TestReleaseDivergence(t *testing.T) {
	scrape := map[string]float64{
		`monitor_release_divergence{metric="js"}`: 0.042,
		`monitor_release_divergence{metric="l1"}`: 0.31,
		`monitor_alarm{signal="divergence"}`:      0,
		"curator_rounds":                          42,
	}
	got := releaseDivergence(scrape)
	if len(got) != 2 || got["js"] != 0.042 || got["l1"] != 0.31 {
		t.Fatalf("releaseDivergence = %v", got)
	}
	if len(releaseDivergence(map[string]float64{"curator_rounds": 1})) != 0 {
		t.Fatal("divergence extracted from a scrape without monitor series")
	}
}
