// Command retrasyn runs the private synthesis pipeline end-to-end: load (or
// generate) a trajectory dataset, replay it through RetraSyn or an LDP-IDS
// baseline under w-event ε-LDP, and report the released synthetic database
// and its utility.
//
// Usage:
//
//	retrasyn -dataset tdrive -scale 0.5 -eps 1.0 -w 20 -k 6 -division population
//	retrasyn -in traces.csv -boundsMax 30 -method lpa -out synthetic.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"retrasyn"
	"retrasyn/internal/trajectory"
)

func main() {
	var (
		dataset  = flag.String("dataset", "tdrive", `standard dataset: "tdrive", "oldenburg", "sanjoaquin" (ignored with -in)`)
		in       = flag.String("in", "", "input raw-trajectory CSV (as written by datagen)")
		boundMin = flag.Float64("boundsMin", 0, "spatial lower bound for -in data (both axes)")
		boundMax = flag.Float64("boundsMax", 30, "spatial upper bound for -in data (both axes)")
		scale    = flag.Float64("scale", 0.5, "population scale for generated datasets")
		k        = flag.Int("k", 6, "grid granularity K")
		eps      = flag.Float64("eps", 1.0, "privacy budget ε")
		w        = flag.Int("w", 20, "window size w")
		division = flag.String("division", "population", `"budget" or "population"`)
		strategy = flag.String("strategy", "adaptive", `"adaptive", "uniform", or "sample"`)
		method   = flag.String("method", "retrasyn", `"retrasyn", "lbd", "lba", "lpd", or "lpa"`)
		shards   = flag.Int("shards", 1, "parallel pipeline shards (users fanned out by ID; 1 = sequential engine)")
		seed     = flag.Uint64("seed", 2024, "run seed")
		out      = flag.String("out", "", "write the synthetic cell streams to this CSV path")
		quiet    = flag.Bool("quiet", false, "suppress the utility report")
	)
	flag.Parse()

	raw, bounds, err := loadData(*in, *dataset, *scale, *seed, *boundMin, *boundMax)
	if err != nil {
		fatal(err)
	}
	g, err := retrasyn.NewGrid(*k, bounds)
	if err != nil {
		fatal(err)
	}
	orig := retrasyn.Discretize(raw, g)
	stats := orig.Stats()
	fmt.Printf("input: %s — %d streams, %d points, avg length %.2f, %d timestamps\n",
		orig.Name, stats.Size, stats.NumPoints, stats.AvgLength, stats.Timestamps)

	var syn *retrasyn.Dataset
	switch strings.ToLower(*method) {
	case "retrasyn":
		div := retrasyn.PopulationDivision
		if *division == "budget" {
			div = retrasyn.BudgetDivision
		} else if *division != "population" {
			fatal(fmt.Errorf("unknown division %q", *division))
		}
		fw, err := retrasyn.New(retrasyn.Options{
			Grid:     g,
			Epsilon:  *eps,
			Window:   *w,
			Division: div,
			Strategy: *strategy,
			Lambda:   stats.AvgLength,
			Shards:   *shards,
			Seed:     *seed,
		})
		if err != nil {
			fatal(err)
		}
		var runStats retrasyn.RunStats
		syn, runStats, err = fw.Run(orig)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run: %d collection rounds, %d reports, %.3fs total component time\n",
			runStats.Rounds, runStats.TotalReports, runStats.Timings.Total().Seconds())
	case "lbd", "lba", "lpd", "lpa":
		bm := map[string]retrasyn.BaselineMethod{
			"lbd": retrasyn.LBD, "lba": retrasyn.LBA, "lpd": retrasyn.LPD, "lpa": retrasyn.LPA,
		}[strings.ToLower(*method)]
		syn, err = retrasyn.RunBaseline(orig, g, bm, *eps, *w, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	synStats := syn.Stats()
	fmt.Printf("released: %d synthetic streams, %d points\n", synStats.Size, synStats.NumPoints)

	if !*quiet {
		r := retrasyn.EvaluateUtility(orig, syn, g, retrasyn.UtilityOptions{Seed: *seed})
		fmt.Printf("\nutility (smaller better unless noted):\n")
		fmt.Printf("  density error:    %.4f\n", r.DensityError)
		fmt.Printf("  query error:      %.4f\n", r.QueryError)
		fmt.Printf("  hotspot NDCG:     %.4f (larger better)\n", r.HotspotNDCG)
		fmt.Printf("  transition error: %.4f\n", r.TransitionError)
		fmt.Printf("  pattern F1:       %.4f (larger better)\n", r.PatternF1)
		fmt.Printf("  kendall tau:      %.4f (larger better)\n", r.KendallTau)
		fmt.Printf("  trip error:       %.4f\n", r.TripError)
		fmt.Printf("  length error:     %.4f\n", r.LengthError)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trajectory.WriteCells(f, syn); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote synthetic streams to %s\n", *out)
	}
}

func loadData(in, dataset string, scale float64, seed uint64, boundMin, boundMax float64) (*retrasyn.RawDataset, retrasyn.Bounds, error) {
	if in == "" {
		return retrasyn.StandardDataset(dataset, scale, seed)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, retrasyn.Bounds{}, err
	}
	defer f.Close()
	raw, err := trajectory.ReadRaw(f)
	if err != nil {
		return nil, retrasyn.Bounds{}, err
	}
	b := retrasyn.Bounds{MinX: boundMin, MinY: boundMin, MaxX: boundMax, MaxY: boundMax}
	return raw, b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "retrasyn:", err)
	os.Exit(1)
}
