// Command retrasyn runs the private synthesis pipeline end-to-end: load (or
// generate) a trajectory dataset, replay it through RetraSyn or an LDP-IDS
// baseline under w-event ε-LDP, and report the released synthetic database
// and its utility.
//
// Usage:
//
//	retrasyn -dataset tdrive -scale 0.5 -eps 1.0 -w 20 -k 6 -division population
//	retrasyn -in traces.csv -boundsMax 30 -method lpa -out synthetic.csv
//	retrasyn -dataset tdrive -spatial quadtree -max-leaves 48
//	retrasyn -dataset corridor -spatial geofence -fence districts.geojson
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"retrasyn"
	"retrasyn/internal/trajectory"
)

func main() {
	var (
		dataset     = flag.String("dataset", "tdrive", `standard dataset: "tdrive", "oldenburg", "sanjoaquin", "drifting", "corridor" (ignored with -in)`)
		in          = flag.String("in", "", "input raw-trajectory CSV (as written by datagen)")
		boundMin    = flag.Float64("boundsMin", 0, "spatial lower bound for -in data (both axes)")
		boundMax    = flag.Float64("boundsMax", 30, "spatial upper bound for -in data (both axes)")
		scale       = flag.Float64("scale", 0.5, "population scale for generated datasets")
		k           = flag.Int("k", 6, "grid granularity K")
		eps         = flag.Float64("eps", 1.0, "privacy budget ε")
		w           = flag.Int("w", 20, "window size w")
		division    = flag.String("division", "population", `"budget" or "population"`)
		strategy    = flag.String("strategy", "adaptive", `"adaptive", "uniform", or "sample"`)
		method      = flag.String("method", "retrasyn", `"retrasyn", "lbd", "lba", "lpd", or "lpa"`)
		shards      = flag.Int("shards", 1, "parallel pipeline shards (users fanned out by ID; 1 = sequential engine)")
		spatialKind = flag.String("spatial", "uniform", `spatial discretization: "uniform" (K×K grid), "quadtree" (density-adaptive) or "geofence" (polygonal, requires -fence)`)
		maxLeaves   = flag.Int("max-leaves", 64, "quadtree leaf budget (-spatial quadtree)")
		fence       = flag.String("fence", "", "GeoJSON fence file whose polygons become the cells (-spatial geofence)")
		density     = flag.String("density", "", "public/historical raw-trajectory CSV seeding the quadtree density sketch; omitted, the sketch falls back to the input itself (simulation only — see the printed warning)")
		rediscEvery = flag.Int("rediscretize-every", 0, "rebuild the spatial layout from the released stream every N windows and migrate when it drifted (0 = frozen layout)")
		relayoutThr = flag.Float64("relayout-threshold", 0, "minimum layout distance in [0,1) for a rebuilt layout to replace the current one (0 = default 0.1)")
		monitorWin  = flag.Int("monitor-window", 0, "enable the live utility monitor with a release sketch of N timestamps (0 = off)")
		trigger     = flag.String("trigger", "", `relayout trigger policy: "geometric" (default), "degradation-or" or "degradation-and" (combine the distance threshold with utility-monitor alarms; need -monitor-window and -rediscretize-every)`)
		seed        = flag.Uint64("seed", 2024, "run seed")
		out         = flag.String("out", "", "write the synthetic cell streams to this CSV path")
		quiet       = flag.Bool("quiet", false, "suppress the utility report")
	)
	flag.Parse()

	if err := validateFlags(*k, *eps, *w, *shards, *scale, *boundMin, *boundMax, *spatialKind, *maxLeaves, *fence); err != nil {
		fatal(err)
	}
	if *rediscEvery < 0 {
		fatal(fmt.Errorf("-rediscretize-every must be ≥ 0, got %d", *rediscEvery))
	}
	if *relayoutThr < 0 || *relayoutThr >= 1 {
		fatal(fmt.Errorf("-relayout-threshold must be in [0,1), got %v", *relayoutThr))
	}
	if *monitorWin < 0 {
		fatal(fmt.Errorf("-monitor-window must be ≥ 0, got %d", *monitorWin))
	}
	if err := retrasyn.TriggerPolicy(*trigger).Validate(); err != nil {
		fatal(fmt.Errorf("-trigger: %v", err))
	}
	raw, bounds, err := loadData(*in, *dataset, *scale, *seed, *boundMin, *boundMax)
	if err != nil {
		fatal(err)
	}

	// The uniform grid is always built: LDP-IDS baselines and the utility
	// metrics are defined over it. With -spatial quadtree the engine itself
	// runs on the density-adaptive tree instead.
	g, err := retrasyn.NewGrid(*k, bounds)
	if err != nil {
		fatal(err)
	}
	var space retrasyn.Discretizer = g
	switch *spatialKind {
	case "quadtree":
		sketch, err := loadSketch(*density, raw)
		if err != nil {
			fatal(err)
		}
		qt, err := retrasyn.NewQuadtree(bounds, sketch, retrasyn.QuadtreeOptions{MaxLeaves: *maxLeaves})
		if err != nil {
			fatal(err)
		}
		space = qt
	case "geofence":
		gf, err := loadFence(*fence)
		if err != nil {
			fatal(err)
		}
		space = gf
	}
	orig := retrasyn.Discretize(raw, space)
	stats := orig.Stats()
	fmt.Printf("input: %s — %d streams, %d points, avg length %.2f, %d timestamps\n",
		orig.Name, stats.Size, stats.NumPoints, stats.AvgLength, stats.Timestamps)
	fmt.Printf("space: %s — %d cells, %d movement states\n",
		*spatialKind, space.NumCells(), space.TotalMoveStates())

	var syn *retrasyn.Dataset
	evalSpace := space // discretization the utility report runs over
	switch strings.ToLower(*method) {
	case "retrasyn":
		div := retrasyn.PopulationDivision
		if *division == "budget" {
			div = retrasyn.BudgetDivision
		} else if *division != "population" {
			fatal(fmt.Errorf("unknown -division %q (want \"budget\" or \"population\")", *division))
		}
		fw, err := retrasyn.New(retrasyn.Options{
			Discretizer:       space,
			Epsilon:           *eps,
			Window:            *w,
			Division:          div,
			Strategy:          *strategy,
			Lambda:            stats.AvgLength,
			Shards:            *shards,
			RediscretizeEvery: *rediscEvery,
			RelayoutThreshold: *relayoutThr,
			MonitorWindow:     *monitorWin,
			TriggerPolicy:     retrasyn.TriggerPolicy(*trigger),
			Seed:              *seed,
		})
		if err != nil {
			fatal(err)
		}
		var runStats retrasyn.RunStats
		if *rediscEvery > 0 {
			// Adaptive runs replay the raw stream so each timestamp's
			// reports encode against the layout currently in effect.
			syn, runStats, err = fw.RunAdaptive(raw)
		} else {
			syn, runStats, err = fw.Run(orig)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run: %d collection rounds, %d reports, %.3fs total component time\n",
			runStats.Rounds, runStats.TotalReports, runStats.Timings.Total().Seconds())
		if *rediscEvery > 0 {
			final := fw.Space()
			fmt.Printf("relayout: %d migrations, final layout %d cells (%s)\n",
				runStats.Relayouts, final.NumCells(), final.Fingerprint())
			// The release is coherent in the final layout (migrations remap
			// stored cells), so utility compares there.
			evalSpace = final
		}
		if *monitorWin > 0 {
			h := fw.Health()
			alarms := int64(0)
			for _, s := range h.Signals {
				alarms += s.Alarms
			}
			fmt.Printf("monitor: status %s, release divergence js %.4f / l1 %.4f, %d alarms\n",
				h.Status, h.DivergenceJS, h.DivergenceL1, alarms)
		}
	case "lbd", "lba", "lpd", "lpa":
		if *spatialKind != "uniform" {
			fatal(fmt.Errorf("the LDP-IDS baselines are defined over the uniform grid; drop -spatial %s or use -method retrasyn", *spatialKind))
		}
		if *rediscEvery > 0 {
			fatal(fmt.Errorf("the LDP-IDS baselines run on a frozen layout; drop -rediscretize-every or use -method retrasyn"))
		}
		bm := map[string]retrasyn.BaselineMethod{
			"lbd": retrasyn.LBD, "lba": retrasyn.LBA, "lpd": retrasyn.LPD, "lpa": retrasyn.LPA,
		}[strings.ToLower(*method)]
		syn, err = retrasyn.RunBaseline(orig, g, bm, *eps, *w, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -method %q (want \"retrasyn\", \"lbd\", \"lba\", \"lpd\", or \"lpa\")", *method))
	}

	synStats := syn.Stats()
	fmt.Printf("released: %d synthetic streams, %d points\n", synStats.Size, synStats.NumPoints)

	if !*quiet {
		// Utility metrics are discretization-aware: quadtree (and
		// post-migration) runs get first-class reports over their own cells.
		evalOrig := orig
		if evalSpace.Fingerprint() != space.Fingerprint() {
			evalOrig = retrasyn.Discretize(raw, evalSpace)
		}
		r := retrasyn.EvaluateUtilitySpace(evalOrig, syn, evalSpace, retrasyn.UtilityOptions{Seed: *seed})
		fmt.Printf("\nutility (smaller better unless noted):\n")
		fmt.Printf("  density error:    %.4f\n", r.DensityError)
		fmt.Printf("  query error:      %.4f\n", r.QueryError)
		fmt.Printf("  hotspot NDCG:     %.4f (larger better)\n", r.HotspotNDCG)
		fmt.Printf("  transition error: %.4f\n", r.TransitionError)
		fmt.Printf("  pattern F1:       %.4f (larger better)\n", r.PatternF1)
		fmt.Printf("  kendall tau:      %.4f (larger better)\n", r.KendallTau)
		fmt.Printf("  trip error:       %.4f\n", r.TripError)
		fmt.Printf("  length error:     %.4f\n", r.LengthError)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trajectory.WriteCells(f, syn); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote synthetic streams to %s\n", *out)
	}
}

// validateFlags rejects unusable flag combinations up front with errors
// that name the flag and the accepted range.
func validateFlags(k int, eps float64, w, shards int, scale, boundMin, boundMax float64, spatialKind string, maxLeaves int, fence string) error {
	if k < 1 {
		return fmt.Errorf("-k must be ≥ 1, got %d", k)
	}
	if !(eps > 0) {
		return fmt.Errorf("-eps must be > 0, got %v", eps)
	}
	if w < 1 {
		return fmt.Errorf("-w must be ≥ 1, got %d", w)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be ≥ 1, got %d", shards)
	}
	if !(scale > 0) {
		return fmt.Errorf("-scale must be > 0, got %v", scale)
	}
	if boundMax <= boundMin {
		return fmt.Errorf("-boundsMax (%v) must exceed -boundsMin (%v)", boundMax, boundMin)
	}
	switch spatialKind {
	case "uniform":
	case "quadtree":
		if maxLeaves < 1 {
			return fmt.Errorf("-max-leaves must be ≥ 1, got %d", maxLeaves)
		}
	case "geofence":
		if fence == "" {
			return fmt.Errorf("-spatial geofence needs -fence, a GeoJSON file whose polygons become the cells")
		}
	default:
		return fmt.Errorf("unknown -spatial %q (want \"uniform\", \"quadtree\" or \"geofence\")", spatialKind)
	}
	return nil
}

// loadFence reads and validates the -fence file; parse and validation errors
// both name the offending polygon index.
func loadFence(path string) (*retrasyn.Geofence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open -fence: %w", err)
	}
	defer f.Close()
	polys, err := retrasyn.ParseFence(f)
	if err != nil {
		return nil, fmt.Errorf("-fence %s: %w", path, err)
	}
	gf, err := retrasyn.NewGeofence(polys)
	if err != nil {
		return nil, fmt.Errorf("-fence %s: %w", path, err)
	}
	return gf, nil
}

// loadSketch reads the quadtree density sketch from the -density CSV. When
// no file is given it falls back to the run's own input — fine for the
// simulated datasets this command usually drives, but on real private data
// the tree layout would leak hotspot locations outside the ε accounting, so
// the fallback announces itself loudly.
func loadSketch(density string, input *retrasyn.RawDataset) ([]retrasyn.Point, error) {
	if density == "" {
		fmt.Fprintln(os.Stderr, "retrasyn: WARNING: quadtree density sketch derived from the input stream itself;"+
			" on private data pass -density with a public/historical CSV, or the tree layout leaks hotspots outside the ε-LDP guarantee")
		return retrasyn.DensitySketch(input), nil
	}
	f, err := os.Open(density)
	if err != nil {
		return nil, fmt.Errorf("open -density: %w", err)
	}
	defer f.Close()
	raw, err := trajectory.ReadRaw(f)
	if err != nil {
		return nil, fmt.Errorf("parse -density %s: %w", density, err)
	}
	pts := retrasyn.DensitySketch(raw)
	if len(pts) == 0 {
		return nil, fmt.Errorf("-density %s holds no points; the quadtree needs a non-empty sketch", density)
	}
	return pts, nil
}

func loadData(in, dataset string, scale float64, seed uint64, boundMin, boundMax float64) (*retrasyn.RawDataset, retrasyn.Bounds, error) {
	if in == "" {
		return retrasyn.StandardDataset(dataset, scale, seed)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, retrasyn.Bounds{}, err
	}
	defer f.Close()
	raw, err := trajectory.ReadRaw(f)
	if err != nil {
		return nil, retrasyn.Bounds{}, err
	}
	b := retrasyn.Bounds{MinX: boundMin, MinY: boundMin, MaxX: boundMax, MaxY: boundMax}
	return raw, b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "retrasyn:", err)
	os.Exit(1)
}
