// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table3                 # one artifact
//	experiments -exp all -scale 1.0         # the full evaluation
//	experiments -exp fig6 -scale 0.3        # quicker sweep
//
// Artifacts: table1, table3, table4, table5, fig3, fig4, fig5, fig6, fig7.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"retrasyn/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "artifact to regenerate (table1|table3|table4|table5|fig3|fig4|fig5|fig6|fig7|all)")
		scale    = flag.Float64("scale", 1.0, "dataset population scale")
		eps      = flag.Float64("eps", 1.0, "default privacy budget ε")
		w        = flag.Int("w", 20, "default window size w")
		k        = flag.Int("k", 6, "default granularity K")
		phi      = flag.Int("phi", 10, "default evaluation range φ")
		seed     = flag.Uint64("seed", 2024, "seed")
		parallel = flag.Int("parallel", 0, "max concurrent runs (default NumCPU)")
		bestOf   = flag.Bool("bestof", true, "Table III: report best across allocation strategies")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Scale = *scale
	p.Epsilon = *eps
	p.W = *w
	p.K = *k
	p.Phi = *phi
	p.Seed = *seed
	p.BestOf = *bestOf
	if *parallel > 0 {
		p.Parallelism = *parallel
	}
	env := experiments.NewEnv(p)

	runners := map[string]func() (fmt.Stringer, error){
		"table1": func() (fmt.Stringer, error) { return env.Table1() },
		"table3": func() (fmt.Stringer, error) { return env.Table3(nil) },
		"table4": func() (fmt.Stringer, error) { return env.Table4() },
		"table5": func() (fmt.Stringer, error) { return env.Table5() },
		"fig3":   func() (fmt.Stringer, error) { return env.Fig3() },
		"fig4":   func() (fmt.Stringer, error) { return env.Fig4(nil) },
		"fig5":   func() (fmt.Stringer, error) { return env.Fig5(nil) },
		"fig6":   func() (fmt.Stringer, error) { return env.Fig6(nil) },
		"fig7":   func() (fmt.Stringer, error) { return env.Fig7(nil) },
	}
	order := []string{"table1", "table3", "table4", "table5", "fig3", "fig4", "fig5", "fig6", "fig7"}

	var selected []string
	switch strings.ToLower(*exp) {
	case "all":
		selected = order
	default:
		if _, ok := runners[strings.ToLower(*exp)]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q (want one of %s, all)\n",
				*exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		selected = []string{strings.ToLower(*exp)}
	}

	fmt.Printf("# RetraSyn evaluation — scale=%.2f ε=%.1f w=%d K=%d φ=%d seed=%d\n",
		p.Scale, p.Epsilon, p.W, p.K, p.Phi, p.Seed)
	for _, name := range selected {
		start := time.Now()
		res, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n================ %s (%.1fs) ================\n\n%s",
			name, time.Since(start).Seconds(), res.String())
	}
}
