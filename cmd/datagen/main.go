// Command datagen generates the standard evaluation datasets (the
// substitutes for T-Drive, Oldenburg and SanJoaquin documented in
// DESIGN.md §3) and writes them as raw-trajectory CSV.
//
// Usage:
//
//	datagen -dataset tdrive -scale 1.0 -seed 2024 -out tdrive.csv
//	datagen -dataset oldenburg -stats
//	datagen -dataset corridor -out corridor.csv -fence-out corridor.geojson
//	datagen -dataset sanjoaquin -scale 4 -k 6 -transitions-out sj_transition_id.xz
package main

import (
	"flag"
	"fmt"
	"os"

	"retrasyn"
	"retrasyn/internal/dataset"
	"retrasyn/internal/geofence"
	"retrasyn/internal/trajectory"
)

func main() {
	var (
		dsName   = flag.String("dataset", "tdrive", `dataset: "tdrive", "oldenburg", "sanjoaquin", "drifting" (drifting-hotspot workload for re-discretization benchmarks), or "corridor" (corridor/district workload for geofence benchmarks)`)
		scale    = flag.Float64("scale", 1.0, "population scale factor")
		seed     = flag.Uint64("seed", 2024, "generation seed")
		out      = flag.String("out", "", "output CSV path (default stdout)")
		fenceOut = flag.String("fence-out", "", `write the corridor workload's matching GeoJSON fence here ("corridor" only; feed it to retrasyn/curator -spatial geofence -fence)`)
		k        = flag.Int("k", 6, "grid granularity for -stats and -transitions-out")
		stats    = flag.Bool("stats", false, "print discretized dataset statistics instead of CSV")
		transOut = flag.String("transitions-out", "", "also write the discretized stream in the RetraSyn transition-id format here (xz-compressed when the path ends in .xz; replay it with loadgen); when -out is empty this suppresses the CSV dump")
	)
	flag.Parse()

	raw, bounds, err := retrasyn.StandardDataset(*dsName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	if *fenceOut != "" {
		if *dsName != "corridor" && *dsName != "CorridorSim" {
			fatal(fmt.Errorf("-fence-out is only meaningful with -dataset corridor (got %q)", *dsName))
		}
		f, err := os.Create(*fenceOut)
		if err != nil {
			fatal(err)
		}
		if err := geofence.WriteFence(f, retrasyn.CorridorFence(bounds)); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote the corridor fence to %s\n", *fenceOut)
	}
	if *transOut != "" {
		g, err := retrasyn.NewGrid(*k, bounds)
		if err != nil {
			fatal(err)
		}
		cells := retrasyn.Discretize(raw, g)
		wc, err := dataset.Create(*transOut)
		if err != nil {
			fatal(err)
		}
		if err := dataset.WriteDataset(wc, cells, g); err != nil {
			wc.Close()
			fatal(err)
		}
		if err := wc.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d timestamps (%d streams, %d points) to %s\n",
			cells.T, len(cells.Trajs), cells.NumPoints(), *transOut)
		if *out == "" && !*stats {
			return
		}
	}
	if *stats {
		g, err := retrasyn.NewGrid(*k, bounds)
		if err != nil {
			fatal(err)
		}
		cells := retrasyn.Discretize(raw, g)
		s := cells.Stats()
		fmt.Printf("dataset:      %s (scale %.2f, seed %d)\n", raw.Name, *scale, *seed)
		fmt.Printf("bounds:       [%g,%g]×[%g,%g], K=%d\n", bounds.MinX, bounds.MaxX, bounds.MinY, bounds.MaxY, *k)
		fmt.Printf("streams:      %d\n", s.Size)
		fmt.Printf("points:       %d\n", s.NumPoints)
		fmt.Printf("avg length:   %.2f\n", s.AvgLength)
		fmt.Printf("timestamps:   %d\n", s.Timestamps)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trajectory.WriteRaw(w, raw); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d streams (%d points) to %s\n", len(raw.Trajs), raw.NumPoints(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
