// Command datagen generates the standard evaluation datasets (the
// substitutes for T-Drive, Oldenburg and SanJoaquin documented in
// DESIGN.md §3) and writes them as raw-trajectory CSV.
//
// Usage:
//
//	datagen -dataset tdrive -scale 1.0 -seed 2024 -out tdrive.csv
//	datagen -dataset oldenburg -stats
//	datagen -dataset corridor -out corridor.csv -fence-out corridor.geojson
package main

import (
	"flag"
	"fmt"
	"os"

	"retrasyn"
	"retrasyn/internal/geofence"
	"retrasyn/internal/trajectory"
)

func main() {
	var (
		dataset  = flag.String("dataset", "tdrive", `dataset: "tdrive", "oldenburg", "sanjoaquin", "drifting" (drifting-hotspot workload for re-discretization benchmarks), or "corridor" (corridor/district workload for geofence benchmarks)`)
		scale    = flag.Float64("scale", 1.0, "population scale factor")
		seed     = flag.Uint64("seed", 2024, "generation seed")
		out      = flag.String("out", "", "output CSV path (default stdout)")
		fenceOut = flag.String("fence-out", "", `write the corridor workload's matching GeoJSON fence here ("corridor" only; feed it to retrasyn/curator -spatial geofence -fence)`)
		k        = flag.Int("k", 6, "grid granularity for -stats")
		stats    = flag.Bool("stats", false, "print discretized dataset statistics instead of CSV")
	)
	flag.Parse()

	raw, bounds, err := retrasyn.StandardDataset(*dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	if *fenceOut != "" {
		if *dataset != "corridor" && *dataset != "CorridorSim" {
			fatal(fmt.Errorf("-fence-out is only meaningful with -dataset corridor (got %q)", *dataset))
		}
		f, err := os.Create(*fenceOut)
		if err != nil {
			fatal(err)
		}
		if err := geofence.WriteFence(f, retrasyn.CorridorFence(bounds)); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote the corridor fence to %s\n", *fenceOut)
	}
	if *stats {
		g, err := retrasyn.NewGrid(*k, bounds)
		if err != nil {
			fatal(err)
		}
		cells := retrasyn.Discretize(raw, g)
		s := cells.Stats()
		fmt.Printf("dataset:      %s (scale %.2f, seed %d)\n", raw.Name, *scale, *seed)
		fmt.Printf("bounds:       [%g,%g]×[%g,%g], K=%d\n", bounds.MinX, bounds.MaxX, bounds.MinY, bounds.MaxY, *k)
		fmt.Printf("streams:      %d\n", s.Size)
		fmt.Printf("points:       %d\n", s.NumPoints)
		fmt.Printf("avg length:   %.2f\n", s.AvgLength)
		fmt.Printf("timestamps:   %d\n", s.Timestamps)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trajectory.WriteRaw(w, raw); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d streams (%d points) to %s\n", len(raw.Trajs), raw.NumPoints(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
