package retrasyn

// End-to-end tests of online adaptive re-discretization through the public
// facade: the framework sketches its own released stream, rebuilds the
// quadtree at window boundaries, and migrates every engine shard atomically
// between timestamps.

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"testing"

	"retrasyn/internal/trajectory"
)

// datasetFingerprint canonically hashes a release (stream count, then every
// start and cell in released order).
func datasetFingerprint(d *Dataset) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(len(d.Trajs))
	for _, tr := range d.Trajs {
		put(tr.Start)
		put(len(tr.Cells))
		for _, c := range tr.Cells {
			put(int(c))
		}
	}
	return h.Sum64()
}

// driftingRaw generates a compact drifting-hotspot stream for the facade
// tests: the hotspot crosses the space within T timestamps.
func driftingRaw(t *testing.T, T int, seed uint64) *RawDataset {
	t.Helper()
	raw, err := GenerateDriftingHotspot(DriftConfig{
		T:             T,
		InitialUsers:  4000,
		ArrivalsPerTs: 300,
		MeanLength:    10,
		HotspotShare:  0.85,
		MaxX:          32, MaxY: 32,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// bootQuadtree grows the boot layout from the stream's opening window only —
// the historical sketch that goes stale as the hotspot drifts.
func bootQuadtree(t *testing.T, raw *RawDataset, warmup int) *Quadtree {
	t.Helper()
	var pts []Point
	for _, tr := range raw.Trajs {
		if tr.Start >= warmup {
			continue
		}
		for i, p := range tr.Points {
			if tr.Start+i >= warmup {
				break
			}
			pts = append(pts, Point{X: p.X, Y: p.Y})
		}
	}
	qt, err := NewQuadtree(Bounds{MaxX: 32, MaxY: 32}, pts, QuadtreeOptions{MaxLeaves: 24, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	return qt
}

func adaptiveOptions(boot *Quadtree, shards int) Options {
	return Options{
		Discretizer: boot,
		Epsilon:     2.0,
		Window:      5,
		// Whole-window rounds give the mobility model a clean drift signal
		// at this (test-sized) population.
		Strategy:          StrategySample,
		Lambda:            10,
		Shards:            shards,
		RediscretizeEvery: 2,
		RelayoutThreshold: 0.05,
		Seed:              20240715,
	}
}

// TestFrameworkAdaptiveRelayoutEndToEnd drives the whole loop: the drifting
// workload must trigger at least one migration, the release must be
// structurally valid in the final layout, and equal seeds must reproduce the
// run (including every migration decision).
func TestFrameworkAdaptiveRelayoutEndToEnd(t *testing.T) {
	raw := driftingRaw(t, 40, 11)
	boot := bootQuadtree(t, raw, 8)
	run := func() (*Dataset, Discretizer, int, RunStats) {
		fw, err := New(adaptiveOptions(boot, 1))
		if err != nil {
			t.Fatal(err)
		}
		syn, stats, err := fw.RunAdaptive(raw)
		if err != nil {
			t.Fatal(err)
		}
		return syn, fw.Space(), fw.LayoutGeneration(), stats
	}
	syn, space, gen, stats := run()
	if gen < 1 {
		t.Fatalf("drifting workload triggered no migration (generation %d)", gen)
	}
	if stats.Relayouts != gen {
		t.Fatalf("stats recorded %d relayouts, engines at generation %d", stats.Relayouts, gen)
	}
	if space.Fingerprint() == boot.Fingerprint() {
		t.Fatal("final layout equals the boot layout despite migrations")
	}
	// Cells of the coherent release must all exist in the final layout
	// (adjacency of pre-migration history may legally break at remapping).
	if err := syn.Validate(space, false); err != nil {
		t.Fatalf("release invalid in the final layout: %v", err)
	}
	syn2, space2, gen2, _ := run()
	if gen2 != gen || space2.Fingerprint() != space.Fingerprint() {
		t.Fatalf("adaptive run not deterministic: gen %d/%d, layouts %s vs %s",
			gen, gen2, space.Fingerprint(), space2.Fingerprint())
	}
	if datasetFingerprint(syn) != datasetFingerprint(syn2) {
		t.Fatal("adaptive releases differ across identical runs")
	}
}

// TestFrameworkAdaptiveSharded proves the coordinator-wide migration
// barrier: with Shards > 1 every engine migrates in lockstep between
// timestamps, and the run stays deterministic.
func TestFrameworkAdaptiveSharded(t *testing.T) {
	raw := driftingRaw(t, 36, 17)
	boot := bootQuadtree(t, raw, 8)
	run := func() (int, string, uint64) {
		fw, err := New(adaptiveOptions(boot, 3))
		if err != nil {
			t.Fatal(err)
		}
		syn, _, err := fw.RunAdaptive(raw)
		if err != nil {
			t.Fatal(err)
		}
		return fw.LayoutGeneration(), fw.Space().Fingerprint(), datasetFingerprint(syn)
	}
	gen, fp, synFP := run()
	if gen < 1 {
		t.Fatalf("sharded drifting workload triggered no migration")
	}
	gen2, fp2, synFP2 := run()
	if gen != gen2 || fp != fp2 || synFP != synFP2 {
		t.Fatal("sharded adaptive run not deterministic")
	}
}

// TestFrameworkAdaptiveCheckpointRoundTrip pins checkpointing across
// migrations at the facade level: snapshot after a migration (controller
// sketch included), serialize through JSON, restore, and continue — the
// releases and all future rebuild decisions must match the uninterrupted
// run exactly. Runs on both the single-engine and the sharded path.
func TestFrameworkAdaptiveCheckpointRoundTrip(t *testing.T) {
	raw := driftingRaw(t, 44, 23)
	boot := bootQuadtree(t, raw, 8)
	for _, shards := range []int{1, 2} {
		opts := adaptiveOptions(boot, shards)
		stream := func(fw *Framework) *trajectory.Stream {
			return trajectory.NewStream(trajectory.Discretize(raw, fw.Space(), trajectory.DiscretizeOptions{}))
		}
		feed := func(fw *Framework, s *trajectory.Stream, from, to int) *trajectory.Stream {
			for ts := from; ts < to; ts++ {
				gen := fw.LayoutGeneration()
				if err := fw.ProcessTimestamp(s.Events[ts], s.Active[ts]); err != nil {
					t.Fatal(err)
				}
				if fw.LayoutGeneration() != gen {
					s = stream(fw)
				}
			}
			return s
		}

		full, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		s := stream(full)
		half := 32 // past several rebuild boundaries (Every×W = 10)
		s = feed(full, s, 0, half)
		if full.LayoutGeneration() < 1 {
			t.Fatalf("shards=%d: no migration before the checkpoint", shards)
		}
		cp, err := full.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		feed(full, s, half, 44)

		decoded, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := Restore(opts, decoded)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.LayoutGeneration() != full.LayoutGeneration() && resumed.Space().Fingerprint() == boot.Fingerprint() {
			t.Fatalf("shards=%d: restore lost the migrated layout", shards)
		}
		rs := stream(resumed)
		feed(resumed, rs, half, 44)

		want := datasetFingerprint(full.Synthetic("cp"))
		got := datasetFingerprint(resumed.Synthetic("cp"))
		if got != want {
			t.Fatalf("shards=%d: resumed release drifted across the migrated checkpoint", shards)
		}
		if resumed.LayoutGeneration() != full.LayoutGeneration() {
			t.Fatalf("shards=%d: resumed generation %d ≠ %d", shards, resumed.LayoutGeneration(), full.LayoutGeneration())
		}
	}
}

// TestRunRejectsAdaptive pins the guard: pre-discretized replay is refused
// when re-discretization is on, pointing at RunAdaptive.
func TestRunRejectsAdaptive(t *testing.T) {
	raw := driftingRaw(t, 12, 31)
	boot := bootQuadtree(t, raw, 6)
	fw, err := New(adaptiveOptions(boot, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw.Run(Discretize(raw, boot)); err == nil {
		t.Fatal("Run accepted a pre-discretized replay under RediscretizeEvery")
	}
	fw2, err := New(Options{Discretizer: boot, Epsilon: 1, Window: 5, Lambda: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw2.RunAdaptive(raw); err == nil {
		t.Fatal("RunAdaptive accepted a frozen-layout framework")
	}
}
