package retrasyn

// End-to-end tests of the utility monitor through the public facade: the
// divergence sentinel, the degradation-triggered relayout path, and the
// bit-identity guarantee that monitoring never perturbs releases.

import (
	"testing"

	"retrasyn/internal/monitor"
)

// jumpRaw builds the abrupt-regime-change workload: a stationary hotspot at
// the lower-left for t < T/2, then its sessions end and a mirrored hotspot
// population appears at the upper right for the rest of the run. Unlike the
// gradual drifting workload — which the synthesizer tracks closely enough to
// keep release-vs-estimate divergence flat — a jump leaves the released
// window stranded at the old region while fresh estimates concentrate at the
// new one, which is exactly the discrepancy the sentinel watches.
func jumpRaw(t *testing.T, T int, seed uint64) *RawDataset {
	t.Helper()
	mk := func(T int, seed uint64) *RawDataset {
		raw, err := GenerateDriftingHotspot(DriftConfig{
			T:             T,
			InitialUsers:  20000,
			ArrivalsPerTs: 2500,
			MeanLength:    8,
			HotspotShare:  0.9,
			DriftRate:     1e-9, // stationary hotspot
			MaxX:          32, MaxY: 32,
			Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := mk(T/2, seed)
	b := mk(T-T/2, seed^0xdecafbad)
	out := &RawDataset{Name: "jump", T: T}
	out.Trajs = append(out.Trajs, a.Trajs...)
	for _, tr := range b.Trajs {
		for i := range tr.Points {
			tr.Points[i].X = 32 - tr.Points[i].X
			tr.Points[i].Y = 32 - tr.Points[i].Y
		}
		tr.Start += T / 2
		out.Trajs = append(out.Trajs, tr)
	}
	return out
}

// monitoredOptions is adaptiveOptions plus a live monitor and a geometric
// threshold parked so high it can never fire — any migration in these runs
// is monitor-initiated.
func monitoredOptions(boot *Quadtree, policy TriggerPolicy) Options {
	o := adaptiveOptions(boot, 1)
	o.Strategy = StrategyUniform // a divergence sample every timestamp
	o.RelayoutThreshold = 0.999
	o.MonitorWindow = 5
	o.TriggerPolicy = policy
	return o
}

// TestFrameworkDegradationTriggerOnJump drives the whole degradation loop:
// the regime jump at T/2 raises the divergence alarm within the next sketch
// window, the degradation-or trigger fires a relayout at the following
// rebuild boundary, the detectors re-learn the migrated layout's baseline,
// and the run ends healthy — exactly one migration, no alarm latch-up, no
// relayout storm.
func TestFrameworkDegradationTriggerOnJump(t *testing.T) {
	const T = 40
	raw := jumpRaw(t, T, 77)
	boot := bootQuadtree(t, raw, 8)
	fw, err := New(monitoredOptions(boot, TriggerDegradationOr))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw.RunAdaptive(raw); err != nil {
		t.Fatal(err)
	}
	h := fw.Health()
	div := h.Signals[monitor.SignalDivergence]
	if div.Alarms < 1 {
		t.Fatal("regime jump never raised the divergence alarm")
	}
	if div.LastAlarmT < T/2 || div.LastAlarmT >= 30 {
		t.Fatalf("divergence alarm at t=%d, want within a window of the jump at t=%d", div.LastAlarmT, T/2)
	}
	if gen := fw.LayoutGeneration(); gen != 1 {
		t.Fatalf("degradation trigger fired %d migrations, want exactly 1 (alarm must clear after the relayout)", gen)
	}
	// Recovery: the post-migration baseline re-learned and the alarm
	// cleared — the run ends healthy.
	if div.Status == "alarm" {
		t.Fatal("divergence alarm still active at end of run despite the migration")
	}
	if h.Status == monitor.StatusFailing {
		t.Fatalf("run ended failing: %+v", h)
	}
}

// TestFrameworkDegradationAndRequiresGeometric pins the AND policy: with the
// geometric threshold parked out of reach, an active alarm alone must not
// migrate.
func TestFrameworkDegradationAndRequiresGeometric(t *testing.T) {
	const T = 40
	raw := jumpRaw(t, T, 77)
	boot := bootQuadtree(t, raw, 8)
	fw, err := New(monitoredOptions(boot, TriggerDegradationAnd))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw.RunAdaptive(raw); err != nil {
		t.Fatal(err)
	}
	if fw.Health().Signals[monitor.SignalDivergence].Alarms < 1 {
		t.Fatal("regime jump never raised the divergence alarm")
	}
	if gen := fw.LayoutGeneration(); gen != 0 {
		t.Fatalf("degradation-and migrated %d times with the geometric leg unsatisfied", gen)
	}
}

// TestFrameworkStableMonitorQuiet is the facade-level hysteresis property:
// the same workload shape without the jump — a stationary hotspot for the
// whole run — raises zero alarms and initiates zero relayouts under the
// degradation-or policy.
func TestFrameworkStableMonitorQuiet(t *testing.T) {
	const T = 40
	raw, err := GenerateDriftingHotspot(DriftConfig{
		T:             T,
		InitialUsers:  20000,
		ArrivalsPerTs: 2500,
		MeanLength:    8,
		HotspotShare:  0.9,
		DriftRate:     1e-9,
		MaxX:          32, MaxY: 32,
		Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	boot := bootQuadtree(t, raw, 8)
	fw, err := New(monitoredOptions(boot, TriggerDegradationOr))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw.RunAdaptive(raw); err != nil {
		t.Fatal(err)
	}
	h := fw.Health()
	for sig, sh := range h.Signals {
		if sh.Alarms != 0 {
			t.Errorf("signal %q raised %d alarms on a stationary workload", sig, sh.Alarms)
		}
	}
	if h.Status != monitor.StatusOK {
		t.Fatalf("stationary run ended with status %q", h.Status)
	}
	if gen := fw.LayoutGeneration(); gen != 0 {
		t.Fatalf("monitor initiated %d relayouts on a stationary workload", gen)
	}
}

// TestFrameworkMonitorBitIdentical is the monitor's golden bit-identity
// gate: under the geometric policy, a run with the monitor live must release
// the exact synthetic database — and make the exact migration decisions — a
// monitor-off run does. The sentinel observes; it never touches engine
// randomness.
func TestFrameworkMonitorBitIdentical(t *testing.T) {
	raw := driftingRaw(t, 40, 11)
	boot := bootQuadtree(t, raw, 8)
	run := func(window int) (*Dataset, int) {
		o := adaptiveOptions(boot, 1)
		o.MonitorWindow = window
		fw, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		syn, _, err := fw.RunAdaptive(raw)
		if err != nil {
			t.Fatal(err)
		}
		return syn, fw.LayoutGeneration()
	}
	off, offGen := run(0)
	on, onGen := run(5)
	if onGen != offGen {
		t.Fatalf("monitor changed migration decisions under the geometric policy: %d vs %d generations", onGen, offGen)
	}
	if datasetFingerprint(on) != datasetFingerprint(off) {
		t.Fatal("monitor-live release differs from monitor-off release")
	}
}
