// Package retrasyn is a Go implementation of RetraSyn — real-time
// trajectory synthesis with local differential privacy (Hu et al., ICDE
// 2024). An untrusted curator collects users' movement transition states
// through the OUE frequency oracle under w-event ε-LDP, maintains a global
// mobility model refreshed by the Dynamic Mobility Update mechanism, and
// continuously releases a synthetic trajectory database whose
// spatial-temporal distribution tracks the hidden real stream.
//
// The package is a facade over the implementation packages: construct a
// Framework with New, feed it one timestamp of user events at a time (or
// replay a recorded Dataset with Run), and read the evolving synthetic
// database with Synthetic. Utility evaluation, dataset generators, and the
// LDP-IDS baselines are exposed alongside.
//
// Minimal usage:
//
//	g, _ := retrasyn.NewGrid(6, retrasyn.Bounds{MaxX: 30, MaxY: 30})
//	fw, _ := retrasyn.New(retrasyn.Options{
//		Grid:    g,
//		Epsilon: 1.0,
//		Window:  20,
//		Lambda:  13.6,
//	})
//	syn, _, _ := fw.Run(dataset) // dataset: *retrasyn.Dataset
package retrasyn

import (
	"encoding/json"
	"fmt"
	"io"

	"retrasyn/internal/allocation"
	"retrasyn/internal/core"
	"retrasyn/internal/geofence"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldpids"
	"retrasyn/internal/metrics"
	"retrasyn/internal/monitor"
	"retrasyn/internal/obs"
	"retrasyn/internal/pipeline"
	"retrasyn/internal/relayout"
	"retrasyn/internal/spatial"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Re-exported building blocks. Aliases keep the public API nameable while
// the implementation lives in internal packages.
type (
	// Discretizer is the pluggable spatial discretization: a finite cell
	// domain with a reachability adjacency structure. The uniform Grid and
	// the density-adaptive Quadtree both implement it.
	Discretizer = spatial.Discretizer
	// Grid is the K×K uniform spatial discretization (the paper's setup).
	Grid = grid.System
	// Quadtree is the density-adaptive spatial discretization for skewed
	// workloads: hot regions split fine, cold regions stay coarse, so the
	// LDP state domain stops wasting budget on empty cells.
	Quadtree = spatial.Quadtree
	// QuadtreeOptions parameterizes NewQuadtree.
	QuadtreeOptions = spatial.QuadtreeOptions
	// Geofence is the polygonal spatial discretization: cells follow
	// arbitrary simple polygons (districts, campuses, road corridors)
	// instead of rectangles, so the LDP state domain covers only the space
	// trajectories can actually occupy.
	Geofence = geofence.Fence
	// FencePolygon is one geofence cell's vertex ring.
	FencePolygon = geofence.Polygon
	// Point is a continuous location, used for quadtree density sketches.
	Point = spatial.Point
	// Bounds is a continuous bounding box.
	Bounds = spatial.Bounds
	// Cell identifies a cell of a discretization.
	Cell = spatial.Cell
	// Dataset is a discretized trajectory-stream database.
	Dataset = trajectory.Dataset
	// CellTrajectory is one discretized stream.
	CellTrajectory = trajectory.CellTrajectory
	// RawDataset is a continuous (pre-discretization) database.
	RawDataset = trajectory.RawDataset
	// Event is one user's transition state at a timestamp.
	Event = trajectory.Event
	// State is a transition state (movement, entering, or quitting).
	State = transition.State
	// UtilityReport carries the paper's eight utility metrics.
	UtilityReport = metrics.Report
	// UtilityOptions parameterizes utility evaluation.
	UtilityOptions = metrics.Options
	// RunStats aggregates engine statistics, including the per-component
	// timings of the paper's Table V.
	RunStats = core.RunStats
)

// MoveState, EnterState and QuitState construct transition states for
// streaming ingestion.
var (
	MoveState  = transition.MoveState
	EnterState = transition.EnterState
	QuitState  = transition.QuitState
)

// NewGrid constructs a K×K grid over the bounds.
func NewGrid(k int, b Bounds) (*Grid, error) { return grid.New(k, b) }

// NewQuadtree grows a density-adaptive quadtree over the bounds from a
// density sketch — points of *public or historical* data (the tree layout
// derives from the sketch without touching the private stream, so building
// it consumes no privacy budget). Use it as Options.Discretizer for skewed
// workloads where a uniform grid would waste most of its cells.
func NewQuadtree(b Bounds, density []Point, opts QuadtreeOptions) (*Quadtree, error) {
	return spatial.NewQuadtree(b, density, opts)
}

// NewGeofence builds a polygonal discretization from a fence polygon set
// (districts, campuses, road corridors). The polygons are validated — simple
// rings, positive area, pairwise disjoint interiors — with errors naming the
// offending polygon index; adjacency follows shared boundary edges. Use the
// result as Options.Discretizer when the deployment's geography is known, so
// no privacy budget is spent estimating unreachable space.
func NewGeofence(polys []FencePolygon) (*Geofence, error) {
	return geofence.NewFence(polys)
}

// ParseFence reads a GeoJSON-style fence file (FeatureCollection of
// Polygons, a bare Polygon, or a MultiPolygon) into the polygon set
// NewGeofence consumes. See the README's geo-fencing section for the format.
func ParseFence(r io.Reader) ([]FencePolygon, error) {
	return geofence.ParseFence(r)
}

// DensitySketch extracts the raw points of a dataset as a quadtree density
// sketch. Only feed it public or historical data — never the private stream
// the engine will collect over.
func DensitySketch(raw *RawDataset) []Point {
	var pts []Point
	for _, tr := range raw.Trajs {
		for _, p := range tr.Points {
			pts = append(pts, Point{X: p.X, Y: p.Y})
		}
	}
	return pts
}

// Division selects how the privacy resource is split across timestamps.
type Division = allocation.Division

// Division values.
const (
	// BudgetDivision splits the budget ε across timestamps.
	BudgetDivision = allocation.Budget
	// PopulationDivision splits the users across timestamps; each sampled
	// user spends the whole ε and rests for a window.
	PopulationDivision = allocation.Population
)

// Strategy names accepted by Options.Strategy.
const (
	// StrategyAdaptive is the paper's portion-based adaptive strategy
	// (Eq. 10); the default.
	StrategyAdaptive = "adaptive"
	// StrategyUniform spreads resources evenly over the window.
	StrategyUniform = "uniform"
	// StrategySample spends the whole window's resources at its first
	// timestamp.
	StrategySample = "sample"
)

// Options configures a Framework.
type Options struct {
	// Grid is the uniform spatial discretization. Exactly one of Grid and
	// Discretizer must be set.
	Grid *Grid
	// Discretizer is the pluggable spatial discretization — set it instead
	// of Grid to run the engine on an alternative backend such as the
	// density-adaptive quadtree (NewQuadtree).
	Discretizer Discretizer
	// Epsilon is the w-event privacy budget ε (required, > 0).
	Epsilon float64
	// Window is the protected window size w (required, ≥ 1).
	Window int
	// Division selects budget or population division (default population,
	// the variant the paper finds strongest).
	Division Division
	// Strategy is one of StrategyAdaptive (default), StrategyUniform,
	// StrategySample.
	Strategy string
	// Lambda is the termination-restriction factor λ of Eq. 8; the paper
	// uses the dataset's average stream length. Required unless DisableEQ.
	Lambda float64
	// DisableDMU refreshes the whole mobility model every round (the
	// AllUpdate ablation).
	DisableDMU bool
	// DisableEQ drops entering/quitting modelling (the NoEQ ablation).
	DisableEQ bool
	// FaithfulClients simulates every user's perturbation individually
	// instead of sampling the aggregate (slower, bit-identical semantics;
	// see ldp.AggregateOracle for why the default is statistically
	// equivalent).
	FaithfulClients bool
	// SynthesisWorkers > 1 parallelizes synthetic-point generation (the
	// paper's future-work acceleration). Default sequential.
	SynthesisWorkers int
	// Shards > 1 runs that many independent pipeline instances in parallel,
	// fanning users out by ID and merging the released synthetic databases —
	// the heavy-traffic deployment. Each user's whole stream lands on one
	// shard, so the per-user w-event guarantee is exactly the single-stream
	// one. Shard runs are deterministic for a fixed (Seed, Shards) pair but
	// differ from the single-shard stream. Default 1 (bit-identical to the
	// sequential engine).
	Shards int
	// RediscretizeEvery > 0 enables online adaptive re-discretization: every
	// that many windows (Window timestamps each) the framework grows a fresh
	// density-adaptive quadtree from the *released* synthetic stream — a
	// post-processing of the LDP outputs, so the rebuild is privacy-free —
	// and migrates every engine shard onto it atomically between timestamps
	// whenever the layout distance crosses RelayoutThreshold. 0 (default)
	// keeps the boot layout forever; such runs are bit-identical to builds
	// without the feature.
	RediscretizeEvery int
	// RelayoutThreshold is the minimum layout distance (area-weighted misfit
	// in [0,1)) at which a rebuilt layout replaces the current one; below it
	// the rebuild is discarded, so stable workloads never churn. Default
	// 0.1.
	RelayoutThreshold float64
	// RelayoutLeaves caps the rebuilt quadtrees' leaf budget. Default: the
	// boot discretizer's cell count, keeping the LDP report size stable
	// across migrations.
	RelayoutLeaves int
	// MonitorWindow > 0 enables the live utility monitor: a sliding sketch
	// of that many released timestamps is compared each round against the
	// DP-estimated cell histogram (privacy-free post-processing — both
	// inputs are already public), and deterministic change-point detectors
	// raise alarms on sustained degradation. Like Metrics, the monitor is
	// run-scoped (never checkpointed) and never touches the engine RNG, so
	// monitored runs release bit-identical streams. 0 (default) disables
	// monitoring at zero cost.
	MonitorWindow int
	// TriggerPolicy selects how relayout proposals turn into switches:
	// TriggerGeometric (default — the distance threshold alone),
	// TriggerDegradationOr or TriggerDegradationAnd (which OR/AND the
	// threshold with the monitor's alarms). The degradation policies
	// require RediscretizeEvery > 0 and MonitorWindow > 0.
	TriggerPolicy TriggerPolicy
	// Seed drives all randomness; equal seeds reproduce runs.
	Seed uint64
	// Metrics, when non-nil, receives the run's observability series:
	// per-shard pipeline stage-latency histograms, round/report counters, the
	// privacy-budget meter and relayout gauges. Expose it with
	// Metrics.WritePrometheus. Metrics are run-scoped (never checkpointed)
	// and recording never touches the engine RNG, so instrumented runs stay
	// bit-identical. Nil (the default) disables instrumentation at zero cost.
	Metrics *Metrics
}

// Metrics is the framework's metrics registry — see internal/obs for the
// series model (counters, gauges, mergeable log-bucketed histograms,
// Prometheus text exposition via WritePrometheus).
type Metrics = obs.Registry

// NewMetrics creates an empty metrics registry to pass as Options.Metrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// TriggerPolicy decides when a proposed relayout switches — see
// internal/relayout.TriggerPolicy.
type TriggerPolicy = relayout.TriggerPolicy

// Trigger policies for Options.TriggerPolicy.
const (
	TriggerGeometric      = relayout.TriggerGeometric
	TriggerDegradationOr  = relayout.TriggerDegradationOr
	TriggerDegradationAnd = relayout.TriggerDegradationAnd
)

// Health is the utility monitor's structured verdict — see
// internal/monitor.Health.
type Health = monitor.Health

// Framework is the streaming curator: feed events per timestamp, read the
// synthetic database at any point. With Options.Shards > 1 it drives a
// pipeline.Coordinator over that many independent engines; otherwise a
// single sequential engine. Not safe for concurrent use.
type Framework struct {
	engine  *core.Engine          // single-shard path (Shards ≤ 1)
	coord   *pipeline.Coordinator // multi-shard path
	engines []*core.Engine        // every underlying engine (1 or Shards)
	// Online re-discretization (nil unless Options.RediscretizeEvery > 0):
	// the controller sketches the released stream and proposes rebuilt
	// layouts; space is the layout currently in effect across all shards.
	ctl   *relayout.Controller
	space Discretizer
	// mon is the live utility monitor (nil unless Options.MonitorWindow >
	// 0): run-scoped, RNG-free and excluded from checkpoints.
	mon *monitor.Monitor
	t   int
}

// New constructs a Framework.
func New(opts Options) (*Framework, error) {
	division := opts.Division
	if opts.Shards < 0 {
		return nil, fmt.Errorf("retrasyn: Shards must be ≥ 0, got %d", opts.Shards)
	}
	space, err := resolveSpace(opts)
	if err != nil {
		return nil, err
	}
	mode := core.Aggregate
	if opts.FaithfulClients {
		mode = core.PerUser
	}
	newEngine := func(seed uint64, shard int) (*core.Engine, error) {
		strategy, err := buildStrategy(opts.Strategy, division)
		if err != nil {
			return nil, err
		}
		return core.New(core.Options{
			Space:            space,
			Epsilon:          opts.Epsilon,
			W:                opts.Window,
			Division:         division,
			Strategy:         strategy,
			Lambda:           opts.Lambda,
			DisableDMU:       opts.DisableDMU,
			DisableEQ:        opts.DisableEQ,
			OracleMode:       mode,
			SynthesisWorkers: opts.SynthesisWorkers,
			Seed:             seed,
			Metrics:          opts.Metrics,
			MetricsShard:     shard,
		})
	}
	f := &Framework{space: space}
	if opts.RediscretizeEvery > 0 {
		if !relayout.Migratable(space) {
			return nil, fmt.Errorf("retrasyn: RediscretizeEvery needs a discretizer exposing cell geometry (grid, quadtree or geofence), got %T", space)
		}
		leaves := opts.RelayoutLeaves
		if leaves == 0 {
			leaves = space.NumCells()
		}
		ctl, err := relayout.NewController(relayout.ControllerOptions{
			Every:     opts.RediscretizeEvery,
			W:         opts.Window,
			Threshold: opts.RelayoutThreshold,
			Quadtree:  spatial.QuadtreeOptions{MaxLeaves: leaves},
			Bounds:    space.Bounds(),
			Trigger:   opts.TriggerPolicy,
		})
		if err != nil {
			return nil, err
		}
		ctl.SetMetrics(opts.Metrics)
		f.ctl = ctl
	} else if opts.RediscretizeEvery < 0 {
		return nil, fmt.Errorf("retrasyn: RediscretizeEvery must be ≥ 0, got %d", opts.RediscretizeEvery)
	}
	if err := opts.TriggerPolicy.Validate(); err != nil {
		return nil, err
	}
	if opts.MonitorWindow < 0 {
		return nil, fmt.Errorf("retrasyn: MonitorWindow must be ≥ 0, got %d", opts.MonitorWindow)
	}
	if opts.MonitorWindow > 0 {
		mon, err := monitor.New(monitor.Options{Window: opts.MonitorWindow})
		if err != nil {
			return nil, err
		}
		mon.SetMetrics(opts.Metrics)
		f.mon = mon
		if f.ctl != nil {
			f.ctl.SetAlarmSource(mon)
		}
	}
	if opts.TriggerPolicy.UsesAlarms() {
		if f.ctl == nil {
			return nil, fmt.Errorf("retrasyn: TriggerPolicy %q requires RediscretizeEvery > 0", opts.TriggerPolicy)
		}
		if f.mon == nil {
			return nil, fmt.Errorf("retrasyn: TriggerPolicy %q requires MonitorWindow > 0 — the degradation trigger consumes the monitor's alarms", opts.TriggerPolicy)
		}
	}
	if opts.Shards > 1 {
		shards := make([]pipeline.Runner, opts.Shards)
		f.engines = make([]*core.Engine, opts.Shards)
		for i := range shards {
			engine, err := newEngine(opts.Seed+uint64(i)*0x9e3779b97f4a7c15, i)
			if err != nil {
				return nil, err
			}
			shards[i] = engine
			f.engines[i] = engine
		}
		coord, err := pipeline.NewCoordinator(shards)
		if err != nil {
			return nil, err
		}
		f.coord = coord
		return f, nil
	}
	engine, err := newEngine(opts.Seed, 0)
	if err != nil {
		return nil, err
	}
	f.engine = engine
	f.engines = []*core.Engine{engine}
	return f, nil
}

// resolveSpace picks the spatial discretization from the two Options
// fields: exactly one of Grid and Discretizer must be set.
func resolveSpace(opts Options) (Discretizer, error) {
	switch {
	case opts.Grid != nil && opts.Discretizer != nil:
		return nil, fmt.Errorf("retrasyn: set exactly one of Options.Grid and Options.Discretizer, not both")
	case opts.Discretizer != nil:
		return opts.Discretizer, nil
	case opts.Grid != nil:
		return opts.Grid, nil
	default:
		return nil, fmt.Errorf("retrasyn: a spatial discretization is required — set Options.Grid or Options.Discretizer")
	}
}

// buildStrategy instantiates a fresh strategy value — each shard engine
// needs its own because strategies may hold state.
func buildStrategy(name string, division Division) (allocation.Strategy, error) {
	switch name {
	case "", StrategyAdaptive:
		return allocation.NewAdaptive(division), nil
	case StrategyUniform:
		return &allocation.Uniform{Division: division}, nil
	case StrategySample:
		return &allocation.Sample{Division: division}, nil
	default:
		return nil, fmt.Errorf("retrasyn: unknown strategy %q", name)
	}
}

// ProcessTimestamp ingests one timestamp of user events (one transition
// state per present user) together with the publicly known count of active
// users, advancing the synthetic database. Timestamps must be fed in order
// starting from 0; feeding them out of order returns an error without
// advancing the framework.
//
// Inputs are validated before any state changes: a negative active-user
// count or a duplicate user ID within the events (which would let one user
// contribute two reports in a round, silently corrupting the estimates and
// the per-user privacy accounting) returns a descriptive error and leaves
// the framework untouched.
func (f *Framework) ProcessTimestamp(events []Event, activeUsers int) error {
	if activeUsers < 0 {
		return fmt.Errorf("retrasyn: ProcessTimestamp(t=%d): activeUsers must be ≥ 0, got %d", f.t, activeUsers)
	}
	seen := make(map[int]struct{}, len(events))
	for _, ev := range events {
		if _, dup := seen[ev.User]; dup {
			return fmt.Errorf("retrasyn: ProcessTimestamp(t=%d): duplicate event for user %d — each user reports at most one transition state per timestamp", f.t, ev.User)
		}
		seen[ev.User] = struct{}{}
	}
	if f.coord != nil {
		if _, err := f.coord.ProcessTimestamp(f.t, events, activeUsers); err != nil {
			return err
		}
	} else if _, err := f.engine.ProcessTimestamp(f.t, events, activeUsers); err != nil {
		return err
	}
	t := f.t
	f.t++
	if f.ctl != nil || f.mon != nil {
		if err := f.adaptLayout(t); err != nil {
			return err
		}
	}
	return nil
}

// adaptLayout runs the post-timestamp observation loop: sketch the released
// positions for the re-discretization controller and the utility monitor,
// close the monitor's round (so the degradation trigger sees alarms that
// include timestamp t), and at every rebuild boundary grow a fresh layout
// from the sketch and migrate all shards when the trigger policy says to.
func (f *Framework) adaptLayout(t int) error {
	var pts []Point
	for _, e := range f.engines {
		pts = e.ReleasedPositions(pts)
	}
	if f.ctl != nil {
		f.ctl.Observe(t, pts)
	}
	f.observeMonitor(t, pts)
	if f.ctl == nil || !f.ctl.Due(t) {
		return nil
	}
	prop, err := f.ctl.Propose(f.space)
	if err != nil {
		return fmt.Errorf("retrasyn: re-discretization after timestamp %d: %w", t, err)
	}
	if !prop.Switch {
		return nil
	}
	if err := f.Relayout(prop.Target); err != nil {
		return fmt.Errorf("retrasyn: re-discretization after timestamp %d: %w", t, err)
	}
	f.ctl.NoteSwitch(prop.Distance)
	// The stationary level of the layout-dependent monitor signals moves
	// with the discretization: re-learn their baselines on the new layout.
	f.mon.NoteRelayout()
	return nil
}

// observeMonitor feeds the utility monitor after timestamp t: the released
// positions plus the shards' last reported DP estimates folded onto the
// current layout (summed across shards — every shard runs the same layout,
// so the per-cell masses align). Rounds where no shard reported at t are
// closed without a divergence sample. The round closes against the sketch
// *before* this timestamp's release is folded in — the synthesizer adapts
// to the estimates within the round, so sketching first would dilute a
// regime change with the already-adapted stream.
func (f *Framework) observeMonitor(t int, pts []Point) {
	if f.mon == nil {
		return
	}
	var cellEst []float64
	var sigSum float64
	reported := 0
	for _, e := range f.engines {
		est, sig, lt, ok := e.LastReportedRound()
		if !ok || lt != t {
			continue
		}
		masses := monitor.CellMasses(e.Domain(), est, nil)
		if cellEst == nil {
			cellEst = masses
		} else {
			for i := range cellEst {
				cellEst[i] += masses[i]
			}
		}
		sigSum += sig
		reported++
	}
	var sigRatio float64
	if reported > 0 {
		sigRatio = sigSum / float64(reported)
	}
	f.mon.Round(t, f.space, cellEst, sigRatio, 0)
	f.mon.ObserveRelease(t, pts)
}

// Health returns the utility monitor's structured verdict. Without a
// monitor (Options.MonitorWindow == 0) it reports "ok" with no signals.
func (f *Framework) Health() Health { return f.mon.Health() }

// Relayout migrates the framework — every engine shard, atomically between
// timestamps — onto a new spatial discretization, resampling all live state
// through the cell-overlap weights (see core.Engine.Relayout). It may be
// called manually at any quiescent point; the automatic path driven by
// Options.RediscretizeEvery goes through it too.
func (f *Framework) Relayout(d Discretizer) error {
	if f.coord != nil {
		if err := f.coord.Relayout(d); err != nil {
			return err
		}
	} else if err := f.engine.Relayout(d); err != nil {
		return err
	}
	f.space = d
	return nil
}

// Space returns the spatial discretization currently in effect (the boot
// discretizer until the first relayout).
func (f *Framework) Space() Discretizer { return f.space }

// LayoutGeneration returns how many layout migrations the framework has
// applied.
func (f *Framework) LayoutGeneration() int { return f.engines[0].Generation() }

// Timestamp returns the next timestamp to be processed.
func (f *Framework) Timestamp() int { return f.t }

// Synthetic returns the current released synthetic database over the
// timestamps processed so far (the merged per-shard releases under
// Shards > 1).
func (f *Framework) Synthetic(name string) *Dataset {
	if f.coord != nil {
		return f.coord.Synthetic(name, f.t)
	}
	return f.engine.Synthetic(name, f.t)
}

// Stats returns accumulated run statistics (summed across shards).
func (f *Framework) Stats() RunStats {
	if f.coord != nil {
		return f.coord.Stats()
	}
	return f.engine.Stats()
}

// Run replays a recorded dataset through the framework and returns the
// released synthetic database. The dataset is converted to per-timestamp
// transition-state events exactly as user devices would report them.
func (f *Framework) Run(orig *Dataset) (*Dataset, RunStats, error) {
	if f.t != 0 {
		return nil, RunStats{}, fmt.Errorf("retrasyn: Run on a framework that already processed %d timestamps", f.t)
	}
	if f.ctl != nil {
		return nil, RunStats{}, fmt.Errorf("retrasyn: Run replays pre-discretized events, whose cell indices go stale when the layout migrates — use RunAdaptive with the raw stream when RediscretizeEvery is enabled")
	}
	stream := trajectory.NewStream(orig)
	if f.coord != nil {
		syn, stats, err := f.coord.Run(stream, orig.Name+"-syn")
		if err != nil {
			return nil, stats, err
		}
		f.t = stream.T
		return syn, stats, nil
	}
	syn, stats := f.engine.Run(stream, orig.Name+"-syn")
	f.t = stream.T
	return syn, stats, nil
}

// RunAdaptive replays a raw (continuous) stream with online adaptive
// re-discretization: every timestamp's events are encoded against the layout
// currently in effect — the faithful simulation of devices that always
// report in the curator's published discretization — and after each
// migration the remaining stream is re-discretized against the new layout.
// Streams are not split at reachability violations (splitting would renumber
// users differently per layout and break the per-user window accounting);
// moves that violate the constraint under the current layout simply don't
// report, exactly as an out-of-domain transition behaves in the streaming
// API. Requires Options.RediscretizeEvery > 0.
func (f *Framework) RunAdaptive(raw *RawDataset) (*Dataset, RunStats, error) {
	if f.ctl == nil {
		return nil, RunStats{}, fmt.Errorf("retrasyn: RunAdaptive requires Options.RediscretizeEvery > 0 — use Run for frozen layouts")
	}
	if f.t != 0 {
		return nil, RunStats{}, fmt.Errorf("retrasyn: RunAdaptive on a framework that already processed %d timestamps", f.t)
	}
	discretize := func() *trajectory.Stream {
		return trajectory.NewStream(trajectory.Discretize(raw, f.space, trajectory.DiscretizeOptions{}))
	}
	stream := discretize()
	for t := 0; t < stream.T; t++ {
		gen := f.LayoutGeneration()
		if err := f.ProcessTimestamp(stream.At(t), stream.Active[t]); err != nil {
			return nil, f.Stats(), err
		}
		if f.LayoutGeneration() != gen {
			stream = discretize()
		}
	}
	return f.Synthetic(raw.Name + "-syn"), f.Stats(), nil
}

// CheckpointVersion guards the checkpoint container format.
const CheckpointVersion = 1

// Checkpoint is a serializable snapshot of a Framework mid-stream: the full
// processing state of every underlying engine (mobility model, allocation
// trackers, window accounting, synthesizer streams and RNG position). A
// framework restored from a checkpoint — with the same Options — continues
// the stream with releases bit-identical to an uninterrupted run.
type Checkpoint struct {
	Version int `json:"version"`
	// T is the next timestamp the framework expects.
	T int `json:"t"`
	// Shards is the shard count the checkpoint was taken at (1 for the
	// single-engine path).
	Shards int `json:"shards"`
	// States holds one opaque engine-state blob per shard.
	States []json.RawMessage `json:"states"`
	// Relayout carries the online re-discretization controller (density
	// sketch and switch history) when the feature is enabled, so rebuild
	// decisions after a restore match the uninterrupted run exactly. Each
	// engine blob independently records the layout it was running on.
	Relayout *relayout.ControllerState `json:"relayout,omitempty"`
}

// Snapshot exports the framework's complete processing state. The framework
// must be quiescent (no ProcessTimestamp in flight); the returned checkpoint
// is a deep copy that later processing never mutates.
func (f *Framework) Snapshot() (*Checkpoint, error) {
	cp := &Checkpoint{Version: CheckpointVersion, T: f.t, Shards: 1}
	if f.ctl != nil {
		st := f.ctl.State()
		cp.Relayout = &st
	}
	if f.coord != nil {
		states, err := f.coord.Snapshot()
		if err != nil {
			return nil, err
		}
		cp.Shards = f.coord.NumShards()
		cp.States = states
		return cp, nil
	}
	st, err := f.engine.SnapshotState()
	if err != nil {
		return nil, err
	}
	cp.States = []json.RawMessage{st}
	return cp, nil
}

// Restore reconstructs a Framework from a checkpoint. opts must equal the
// options the snapshotted framework was built with — each engine validates
// its config fingerprint and rejects mismatches.
func Restore(opts Options, cp *Checkpoint) (*Framework, error) {
	if cp == nil {
		return nil, fmt.Errorf("retrasyn: Restore on nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("retrasyn: checkpoint version %d, library supports %d", cp.Version, CheckpointVersion)
	}
	shards := opts.Shards
	if shards <= 1 {
		shards = 1
	}
	if cp.Shards != shards || len(cp.States) != shards {
		return nil, fmt.Errorf("retrasyn: checkpoint has %d shard states, options configure %d shards", len(cp.States), shards)
	}
	f, err := New(opts)
	if err != nil {
		return nil, err
	}
	if f.coord != nil {
		if err := f.coord.Restore(cp.States); err != nil {
			return nil, err
		}
	} else if err := f.engine.RestoreState(cp.States[0]); err != nil {
		return nil, err
	}
	if f.ctl != nil && cp.Relayout != nil {
		if err := f.ctl.Restore(*cp.Relayout); err != nil {
			return nil, err
		}
	}
	// Every shard restored onto the layout its blob recorded; pick the
	// in-effect layout up from the engines (they migrate in lockstep).
	f.space = f.engines[0].Space()
	f.t = cp.T
	return f, nil
}

// Encode writes the checkpoint as JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(cp)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("retrasyn: decode checkpoint: %w", err)
	}
	return &cp, nil
}

// EvaluateUtility computes the paper's eight utility metrics of a synthetic
// database against the original, over the uniform grid.
func EvaluateUtility(orig, syn *Dataset, g *Grid, opts UtilityOptions) UtilityReport {
	return metrics.Evaluate(orig, syn, g, opts)
}

// EvaluateUtilitySpace computes the eight utility metrics over any spatial
// discretization — quadtree and post-migration runs get first-class utility
// reports, with range queries drawn as continuous boxes over the space.
func EvaluateUtilitySpace(orig, syn *Dataset, d Discretizer, opts UtilityOptions) UtilityReport {
	return metrics.EvaluateSpace(orig, syn, d, opts)
}

// Discretize maps a raw continuous dataset onto the cells of a
// discretization (uniform grid or any other backend), splitting streams at
// reachability violations — the preprocessing the paper applies before
// collection.
func Discretize(raw *RawDataset, d Discretizer) *Dataset {
	return trajectory.Discretize(raw, d, trajectory.DiscretizeOptions{SplitNonAdjacent: true})
}

// BaselineMethod selects an LDP-IDS mechanism.
type BaselineMethod = ldpids.Method

// Baseline methods.
const (
	LBD = ldpids.LBD
	LBA = ldpids.LBA
	LPD = ldpids.LPD
	LPA = ldpids.LPA
)

// RunBaseline replays a dataset through an LDP-IDS baseline (the paper's
// comparison systems) and returns its released synthetic database.
func RunBaseline(orig *Dataset, g *Grid, method BaselineMethod, epsilon float64, window int, seed uint64) (*Dataset, error) {
	e, err := ldpids.New(ldpids.Options{
		Grid:    g,
		Epsilon: epsilon,
		W:       window,
		Method:  method,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	syn, _ := e.Run(trajectory.NewStream(orig), orig.Name+"-"+method.String())
	return syn, nil
}
