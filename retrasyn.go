// Package retrasyn is a Go implementation of RetraSyn — real-time
// trajectory synthesis with local differential privacy (Hu et al., ICDE
// 2024). An untrusted curator collects users' movement transition states
// through the OUE frequency oracle under w-event ε-LDP, maintains a global
// mobility model refreshed by the Dynamic Mobility Update mechanism, and
// continuously releases a synthetic trajectory database whose
// spatial-temporal distribution tracks the hidden real stream.
//
// The package is a facade over the implementation packages: construct a
// Framework with New, feed it one timestamp of user events at a time (or
// replay a recorded Dataset with Run), and read the evolving synthetic
// database with Synthetic. Utility evaluation, dataset generators, and the
// LDP-IDS baselines are exposed alongside.
//
// Minimal usage:
//
//	g, _ := retrasyn.NewGrid(6, retrasyn.Bounds{MaxX: 30, MaxY: 30})
//	fw, _ := retrasyn.New(retrasyn.Options{
//		Grid:    g,
//		Epsilon: 1.0,
//		Window:  20,
//		Lambda:  13.6,
//	})
//	syn, _, _ := fw.Run(dataset) // dataset: *retrasyn.Dataset
package retrasyn

import (
	"fmt"

	"retrasyn/internal/allocation"
	"retrasyn/internal/core"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldpids"
	"retrasyn/internal/metrics"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// Re-exported building blocks. Aliases keep the public API nameable while
// the implementation lives in internal packages.
type (
	// Grid is the K×K uniform spatial discretization.
	Grid = grid.System
	// Bounds is a continuous bounding box.
	Bounds = grid.Bounds
	// Cell identifies a grid cell.
	Cell = grid.Cell
	// Dataset is a discretized trajectory-stream database.
	Dataset = trajectory.Dataset
	// CellTrajectory is one discretized stream.
	CellTrajectory = trajectory.CellTrajectory
	// RawDataset is a continuous (pre-discretization) database.
	RawDataset = trajectory.RawDataset
	// Event is one user's transition state at a timestamp.
	Event = trajectory.Event
	// State is a transition state (movement, entering, or quitting).
	State = transition.State
	// UtilityReport carries the paper's eight utility metrics.
	UtilityReport = metrics.Report
	// UtilityOptions parameterizes utility evaluation.
	UtilityOptions = metrics.Options
	// RunStats aggregates engine statistics, including the per-component
	// timings of the paper's Table V.
	RunStats = core.RunStats
)

// MoveState, EnterState and QuitState construct transition states for
// streaming ingestion.
var (
	MoveState  = transition.MoveState
	EnterState = transition.EnterState
	QuitState  = transition.QuitState
)

// NewGrid constructs a K×K grid over the bounds.
func NewGrid(k int, b Bounds) (*Grid, error) { return grid.New(k, b) }

// Division selects how the privacy resource is split across timestamps.
type Division = allocation.Division

// Division values.
const (
	// BudgetDivision splits the budget ε across timestamps.
	BudgetDivision = allocation.Budget
	// PopulationDivision splits the users across timestamps; each sampled
	// user spends the whole ε and rests for a window.
	PopulationDivision = allocation.Population
)

// Strategy names accepted by Options.Strategy.
const (
	// StrategyAdaptive is the paper's portion-based adaptive strategy
	// (Eq. 10); the default.
	StrategyAdaptive = "adaptive"
	// StrategyUniform spreads resources evenly over the window.
	StrategyUniform = "uniform"
	// StrategySample spends the whole window's resources at its first
	// timestamp.
	StrategySample = "sample"
)

// Options configures a Framework.
type Options struct {
	// Grid is the spatial discretization (required).
	Grid *Grid
	// Epsilon is the w-event privacy budget ε (required, > 0).
	Epsilon float64
	// Window is the protected window size w (required, ≥ 1).
	Window int
	// Division selects budget or population division (default population,
	// the variant the paper finds strongest).
	Division Division
	// Strategy is one of StrategyAdaptive (default), StrategyUniform,
	// StrategySample.
	Strategy string
	// Lambda is the termination-restriction factor λ of Eq. 8; the paper
	// uses the dataset's average stream length. Required unless DisableEQ.
	Lambda float64
	// DisableDMU refreshes the whole mobility model every round (the
	// AllUpdate ablation).
	DisableDMU bool
	// DisableEQ drops entering/quitting modelling (the NoEQ ablation).
	DisableEQ bool
	// FaithfulClients simulates every user's perturbation individually
	// instead of sampling the aggregate (slower, bit-identical semantics;
	// see ldp.AggregateOracle for why the default is statistically
	// equivalent).
	FaithfulClients bool
	// SynthesisWorkers > 1 parallelizes synthetic-point generation (the
	// paper's future-work acceleration). Default sequential.
	SynthesisWorkers int
	// Seed drives all randomness; equal seeds reproduce runs.
	Seed uint64
}

// Framework is the streaming curator: feed events per timestamp, read the
// synthetic database at any point. Not safe for concurrent use.
type Framework struct {
	engine *core.Engine
	t      int
}

// New constructs a Framework.
func New(opts Options) (*Framework, error) {
	division := opts.Division
	var strategy allocation.Strategy
	switch opts.Strategy {
	case "", StrategyAdaptive:
		strategy = allocation.NewAdaptive(division)
	case StrategyUniform:
		strategy = &allocation.Uniform{Division: division}
	case StrategySample:
		strategy = &allocation.Sample{Division: division}
	default:
		return nil, fmt.Errorf("retrasyn: unknown strategy %q", opts.Strategy)
	}
	mode := core.Aggregate
	if opts.FaithfulClients {
		mode = core.PerUser
	}
	engine, err := core.New(core.Options{
		Grid:             opts.Grid,
		Epsilon:          opts.Epsilon,
		W:                opts.Window,
		Division:         division,
		Strategy:         strategy,
		Lambda:           opts.Lambda,
		DisableDMU:       opts.DisableDMU,
		DisableEQ:        opts.DisableEQ,
		OracleMode:       mode,
		SynthesisWorkers: opts.SynthesisWorkers,
		Seed:             opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Framework{engine: engine}, nil
}

// ProcessTimestamp ingests one timestamp of user events (one transition
// state per present user) together with the publicly known count of active
// users, advancing the synthetic database. Timestamps must be fed in order
// starting from 0.
func (f *Framework) ProcessTimestamp(events []Event, activeUsers int) {
	f.engine.ProcessTimestamp(f.t, events, activeUsers)
	f.t++
}

// Timestamp returns the next timestamp to be processed.
func (f *Framework) Timestamp() int { return f.t }

// Synthetic returns the current released synthetic database over the
// timestamps processed so far.
func (f *Framework) Synthetic(name string) *Dataset {
	return f.engine.Synthetic(name, f.t)
}

// Stats returns accumulated run statistics.
func (f *Framework) Stats() RunStats { return f.engine.Stats() }

// Run replays a recorded dataset through the framework and returns the
// released synthetic database. The dataset is converted to per-timestamp
// transition-state events exactly as user devices would report them.
func (f *Framework) Run(orig *Dataset) (*Dataset, RunStats, error) {
	if f.t != 0 {
		return nil, RunStats{}, fmt.Errorf("retrasyn: Run on a framework that already processed %d timestamps", f.t)
	}
	stream := trajectory.NewStream(orig)
	syn, stats := f.engine.Run(stream, orig.Name+"-syn")
	f.t = stream.T
	return syn, stats, nil
}

// EvaluateUtility computes the paper's eight utility metrics of a synthetic
// database against the original.
func EvaluateUtility(orig, syn *Dataset, g *Grid, opts UtilityOptions) UtilityReport {
	return metrics.Evaluate(orig, syn, g, opts)
}

// Discretize maps a raw continuous dataset onto a grid, splitting streams
// at reachability violations — the preprocessing the paper applies before
// collection.
func Discretize(raw *RawDataset, g *Grid) *Dataset {
	return trajectory.Discretize(raw, g, trajectory.DiscretizeOptions{SplitNonAdjacent: true})
}

// BaselineMethod selects an LDP-IDS mechanism.
type BaselineMethod = ldpids.Method

// Baseline methods.
const (
	LBD = ldpids.LBD
	LBA = ldpids.LBA
	LPD = ldpids.LPD
	LPA = ldpids.LPA
)

// RunBaseline replays a dataset through an LDP-IDS baseline (the paper's
// comparison systems) and returns its released synthetic database.
func RunBaseline(orig *Dataset, g *Grid, method BaselineMethod, epsilon float64, window int, seed uint64) (*Dataset, error) {
	e, err := ldpids.New(ldpids.Options{
		Grid:    g,
		Epsilon: epsilon,
		W:       window,
		Method:  method,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	syn, _ := e.Run(trajectory.NewStream(orig), orig.Name+"-"+method.String())
	return syn, nil
}
