package retrasyn

// The benchmark harness: one bench per table and figure of the paper's
// evaluation (regenerated through internal/experiments at a reduced scale so
// `go test -bench=.` completes in minutes), plus micro-benchmarks of the
// hot components. For full-scale artifacts run:
//
//	go run ./cmd/experiments -exp all -scale 1.0
import (
	"testing"

	"retrasyn/internal/allocation"
	"retrasyn/internal/core"
	"retrasyn/internal/dmu"
	"retrasyn/internal/experiments"
	"retrasyn/internal/grid"
	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
)

// benchParams is the reduced-scale configuration for the table/figure
// benches.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Scale = 0.08
	p.W = 10
	p.BestOf = false
	p.Seed = 99
	return p
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Table3([]float64{1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Allocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4WindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Fig4([]int{10, 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5TimeRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Fig5([]int{5, 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Fig6([]int{2, 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchParams())
		if _, err := env.Fig7([]float64{0.5, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------ components

// BenchmarkOUEPerturb measures one faithful client-side report over the
// K=6 transition domain (|S| = 328).
func BenchmarkOUEPerturb(b *testing.B) {
	oracle := ldp.MustOUE(328, 1.0)
	rng := ldp.NewRand(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oracle.Perturb(rng, i%328)
	}
}

// BenchmarkAggregateOracle measures one curator-side collection round over
// 1000 users (the aggregate simulation path).
func BenchmarkAggregateOracle(b *testing.B) {
	oracle := ldp.MustOUE(328, 1.0)
	ao := ldp.NewAggregateOracle(oracle)
	rng := ldp.NewRand(3, 4)
	counts := make([]int, 328)
	for i := 0; i < 1000; i++ {
		counts[i%328]++
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ao.Collect(rng, counts)
	}
}

// BenchmarkDMUSelect measures one significant-transition selection over the
// K=6 domain.
func BenchmarkDMUSelect(b *testing.B) {
	rng := ldp.NewRand(5, 6)
	current := make([]float64, 328)
	estimated := make([]float64, 328)
	for i := range current {
		current[i] = rng.Float64() * 0.01
		estimated[i] = current[i] + (rng.Float64()-0.5)*0.01
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dmu.Select(current, estimated, 1.0, 500)
	}
}

// BenchmarkEngineTimestamp measures one full ProcessTimestamp of the
// population-division engine with ~600 present users.
func BenchmarkEngineTimestamp(b *testing.B) {
	g := grid.MustNew(6, grid.Bounds{MaxX: 30, MaxY: 30})
	rng := ldp.NewRand(7, 8)
	events := make([]trajectory.Event, 600)
	for i := range events {
		c := grid.Cell(rng.IntN(g.NumCells()))
		ns := g.Neighbors(c)
		events[i] = trajectory.Event{User: i, State: MoveState(c, ns[rng.IntN(len(ns))])}
	}
	engine, err := core.New(core.Options{
		Space: g, Epsilon: 1.0, W: 10,
		Division: allocation.Population,
		Lambda:   13.6, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.ProcessTimestamp(i, events, 600)
	}
}

// BenchmarkSynthesisStep measures the per-timestamp generation cost for a
// 5000-stream synthetic population (the dominant cost in Table V).
func BenchmarkSynthesisStep(b *testing.B) {
	raw, bounds, err := StandardDataset("tdrive", 0.1, 5)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := NewGrid(6, bounds)
	orig := Discretize(raw, g)
	fw, err := New(Options{Grid: g, Epsilon: 1, Window: 10, Lambda: 13.6, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	events, active := NewStreamEvents(orig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := i % orig.T
		if ts == 0 && i > 0 {
			b.StopTimer()
			fw, _ = New(Options{Grid: g, Epsilon: 1, Window: 10, Lambda: 13.6, Seed: 3})
			b.StartTimer()
		}
		fw.ProcessTimestamp(events[ts], active[ts])
	}
}

// BenchmarkEvaluate measures the full eight-metric evaluation.
func BenchmarkEvaluate(b *testing.B) {
	raw, bounds, err := StandardDataset("tdrive", 0.1, 5)
	if err != nil {
		b.Fatal(err)
	}
	g, _ := NewGrid(6, bounds)
	orig := Discretize(raw, g)
	fw, _ := New(Options{Grid: g, Epsilon: 1, Window: 10, Lambda: 13.6, Seed: 3})
	syn, _, err := fw.Run(orig)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateUtility(orig, syn, g, UtilityOptions{Seed: uint64(i)})
	}
}
