package retrasyn

import (
	"retrasyn/internal/analytics"
	"retrasyn/internal/grid"
)

// Downstream analytics over a released dataset — the arbitrary
// location-based tasks the paper's versatility claim is about. Queries on
// the synthetic release consume no additional privacy budget.

type (
	// Analytics indexes a dataset for repeated spatio-temporal queries.
	Analytics = analytics.Engine
	// CellCount pairs a cell with a visit count.
	CellCount = analytics.CellCount
	// Region is a rectangular block of grid cells (inclusive bounds).
	Region = grid.Region
)

// NewAnalytics indexes a (typically synthetic) dataset for range counts,
// hotspot top-k, flow queries and congestion alerts.
func NewAnalytics(d *Dataset, g *Grid) *Analytics {
	return analytics.New(d, g)
}
