package retrasyn

// Benchmarks of the pluggable spatial discretization: the uniform K×K grid
// vs the density-adaptive quadtree on a skewed synthetic workload — the
// city-center-plus-suburbs shape where a uniform grid wastes most of its
// cells on empty space. Measured per backend: transition-domain size |S|,
// one OUE collection round (user-side perturbation + curator fold, both
// O(|S|) per report), and the estimation error of that round against the
// true state frequencies.
//
//	go test -bench 'Spatial' -run - .
//
// RETRASYN_EMIT_BENCH=1 go test -run TestEmitBenchSpatialJSON .
// re-measures everything and writes the results to BENCH_spatial.json.

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"

	"retrasyn/internal/ldp"
	"retrasyn/internal/trajectory"
	"retrasyn/internal/transition"
)

// skewedWorkload generates the skewed raw stream: 80% of users move inside
// a hotspot covering 1/16 of the area, the rest roam the whole space.
func skewedWorkload() (*RawDataset, Bounds) {
	b := Bounds{MinX: 0, MinY: 0, MaxX: 32, MaxY: 32}
	rng := ldp.NewRand(20240601, 20240602)
	const users, T = 4000, 30
	raw := &RawDataset{Name: "skewed", T: T}
	for u := 0; u < users; u++ {
		lo, span := 0.0, 32.0
		if u%5 != 0 { // hotspot dweller
			lo, span = 2, 8
		}
		start := rng.IntN(T / 2)
		x := lo + rng.Float64()*span
		y := lo + rng.Float64()*span
		n := 5 + rng.IntN(T-start-4)
		pts := make([]trajectory.RawPoint, 0, n)
		for i := 0; i < n && start+i < T; i++ {
			pts = append(pts, trajectory.RawPoint{X: x, Y: y})
			// One-cell-scale step, clamped to the user's roaming box.
			x = clampBench(x+(rng.Float64()-0.5)*2, lo, lo+span)
			y = clampBench(y+(rng.Float64()-0.5)*2, lo, lo+span)
		}
		raw.Trajs = append(raw.Trajs, trajectory.RawTrajectory{Start: start, Points: pts})
	}
	return raw, b
}

func clampBench(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// spatialBenchSetup holds one backend's prepared collection round.
type spatialBenchSetup struct {
	name     string
	space    Discretizer
	dom      *transition.Domain
	trueFreq []float64 // true state frequencies of the round
	states   []int     // one domain index per report
}

var spatialBench struct {
	once   sync.Once
	setups []*spatialBenchSetup
}

// spatialSetups prepares the same skewed round on both backends: the
// uniform 16×16 grid (256 cells — the granularity the hotspot needs) vs a
// quadtree given only 1/4 of that leaf budget, which it spends almost
// entirely on the hotspot.
func spatialSetups(tb testing.TB) []*spatialBenchSetup {
	spatialBench.once.Do(func() {
		raw, bounds := skewedWorkload()
		g, err := NewGrid(16, bounds)
		if err != nil {
			tb.Fatal(err)
		}
		qt, err := NewQuadtree(bounds, DensitySketch(raw), QuadtreeOptions{MaxLeaves: 64, MaxDepth: 4})
		if err != nil {
			tb.Fatal(err)
		}
		for _, s := range []*spatialBenchSetup{
			{name: "uniform-16x16", space: g},
			{name: "quadtree-64", space: qt},
		} {
			s.dom = transition.NewDomain(s.space)
			orig := Discretize(raw, s.space)
			for _, tr := range orig.Trajs {
				if idx, ok := s.dom.Index(EnterState(tr.Cells[0])); ok {
					s.states = append(s.states, idx)
				}
				for j := 1; j < len(tr.Cells); j++ {
					if idx, ok := s.dom.Index(MoveState(tr.Cells[j-1], tr.Cells[j])); ok {
						s.states = append(s.states, idx)
					}
				}
				if idx, ok := s.dom.Index(QuitState(tr.Cells[len(tr.Cells)-1])); ok {
					s.states = append(s.states, idx)
				}
			}
			s.trueFreq = make([]float64, s.dom.Size())
			for _, idx := range s.states {
				s.trueFreq[idx] += 1 / float64(len(s.states))
			}
			spatialBench.setups = append(spatialBench.setups, s)
		}
	})
	return spatialBench.setups
}

// runSpatialRound perturbs and folds one full OUE round over the setup's
// domain, returning the estimates.
func runSpatialRound(s *spatialBenchSetup, seed uint64) []float64 {
	rng := ldp.NewRand(seed, seed^0xa5a5a5a5)
	oracle := ldp.MustOUE(s.dom.Size(), 1.0)
	agg := ldp.NewAggregator(oracle)
	for _, idx := range s.states {
		agg.Add(oracle.Perturb(rng, idx))
	}
	return agg.EstimateAll()
}

func benchSpatialAggregation(b *testing.B, name string) {
	var setup *spatialBenchSetup
	for _, s := range spatialSetups(b) {
		if s.name == name {
			setup = s
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSpatialRound(setup, uint64(i)+1)
	}
}

// BenchmarkSpatialRoundUniform runs one OUE collection round (perturb +
// fold + estimate) on the uniform 16×16 grid's domain.
func BenchmarkSpatialRoundUniform(b *testing.B) { benchSpatialAggregation(b, "uniform-16x16") }

// BenchmarkSpatialRoundQuadtree runs the identical round on the quadtree's
// smaller domain.
func BenchmarkSpatialRoundQuadtree(b *testing.B) { benchSpatialAggregation(b, "quadtree-64") }

// spatialL1Error measures the round's total estimation error Σ|est−true|
// averaged over trials. With identical ε and reporter count, the per-state
// OUE variance is the same on both backends, so total error scales with
// |S| — the domain the quadtree shrinks.
func spatialL1Error(s *spatialBenchSetup, trials int) float64 {
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		est := runSpatialRound(s, uint64(trial)*7919+1)
		for i, e := range est {
			sum += math.Abs(e - s.trueFreq[i])
		}
	}
	return sum / float64(trials)
}

// TestSpatialQuadtreeShrinksDomain pins the tentpole's promise: on the
// skewed workload the quadtree's transition domain is a fraction of the
// uniform grid's, and the one-round estimation error shrinks with it.
func TestSpatialQuadtreeShrinksDomain(t *testing.T) {
	setups := spatialSetups(t)
	uni, qt := setups[0], setups[1]
	if qt.dom.Size() >= uni.dom.Size()/2 {
		t.Fatalf("quadtree domain %d not < half of uniform %d", qt.dom.Size(), uni.dom.Size())
	}
	uniErr := spatialL1Error(uni, 3)
	qtErr := spatialL1Error(qt, 3)
	if qtErr >= uniErr {
		t.Fatalf("quadtree L1 error %.4f not below uniform %.4f", qtErr, uniErr)
	}
}

// TestEmitBenchSpatialJSON measures the spatial benchmarks and writes
// BENCH_spatial.json. Gated behind RETRASYN_EMIT_BENCH so the regular suite
// stays fast.
func TestEmitBenchSpatialJSON(t *testing.T) {
	if os.Getenv("RETRASYN_EMIT_BENCH") == "" {
		t.Skip("set RETRASYN_EMIT_BENCH=1 to measure and write BENCH_spatial.json")
	}
	type entry struct {
		Name         string  `json:"name"`
		NumCells     int     `json:"num_cells"`
		DomainSize   int     `json:"domain_size"`
		Reports      int     `json:"reports"`
		RoundNsPerOp float64 `json:"round_ns_per_op"`
		EstimationL1 float64 `json:"estimation_l1_error"`
		DomainShrink float64 `json:"domain_shrink_vs_uniform,omitempty"`
		RoundSpeedup float64 `json:"round_speedup_vs_uniform,omitempty"`
		L1ErrorRatio float64 `json:"l1_error_ratio_vs_uniform,omitempty"`
	}
	setups := spatialSetups(t)
	measure := func(s *spatialBenchSetup, bench func(*testing.B)) entry {
		r := testing.Benchmark(bench)
		return entry{
			Name:         s.name,
			NumCells:     s.space.NumCells(),
			DomainSize:   s.dom.Size(),
			Reports:      len(s.states),
			RoundNsPerOp: float64(r.NsPerOp()),
			EstimationL1: spatialL1Error(s, 5),
		}
	}
	uni := measure(setups[0], BenchmarkSpatialRoundUniform)
	qt := measure(setups[1], BenchmarkSpatialRoundQuadtree)
	qt.DomainShrink = float64(uni.DomainSize) / float64(qt.DomainSize)
	qt.RoundSpeedup = uni.RoundNsPerOp / qt.RoundNsPerOp
	qt.L1ErrorRatio = qt.EstimationL1 / uni.EstimationL1

	out := struct {
		Workload   string  `json:"workload"`
		Epsilon    float64 `json:"epsilon"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		Results    []entry `json:"results"`
	}{
		Workload:   "skewed: 80% of 4000 users inside a hotspot covering 1/16 of the area",
		Epsilon:    1.0,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    []entry{uni, qt},
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_spatial.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("domain shrink ×%.2f, round speedup ×%.2f, L1 error ratio %.2f",
		qt.DomainShrink, qt.RoundSpeedup, qt.L1ErrorRatio)
	if qt.DomainShrink <= 1 {
		t.Errorf("quadtree did not shrink the domain (×%.2f)", qt.DomainShrink)
	}
	if qt.L1ErrorRatio >= 1 {
		t.Errorf("quadtree did not reduce estimation error (ratio %.2f)", qt.L1ErrorRatio)
	}
}
