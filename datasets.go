package retrasyn

import (
	"retrasyn/internal/datagen"
	"retrasyn/internal/trajectory"
)

// Dataset generation — the substitutes for the paper's evaluation data
// (DESIGN.md §3), exposed for downstream benchmarking and the runnable
// examples.

// TDriveConfig parameterizes the hotspot-gravity taxi simulator.
type TDriveConfig = datagen.TDriveConfig

// GenerateTDriveLike builds a taxi-like raw dataset with rush-hour flow
// reversal (the T-Drive substitute).
func GenerateTDriveLike(cfg TDriveConfig) (*RawDataset, error) {
	return datagen.TDriveLike(cfg)
}

// RoadNetwork is a spatially embedded road graph.
type RoadNetwork = datagen.RoadNetwork

// BrinkhoffConfig parameterizes the network-constrained moving-object
// generator.
type BrinkhoffConfig = datagen.BrinkhoffConfig

// GenerateRoadNetwork builds a connected jittered-lattice road network.
func GenerateRoadNetwork(side int, b Bounds, seed uint64) (*RoadNetwork, error) {
	return datagen.GenerateRoadNetwork(side, b.MinX, b.MinY, b.MaxX, b.MaxY, seed)
}

// GenerateBrinkhoffLike builds a raw dataset of movers constrained to the
// road network (the Oldenburg/SanJoaquin substitute).
func GenerateBrinkhoffLike(net *RoadNetwork, cfg BrinkhoffConfig) (*RawDataset, error) {
	return datagen.BrinkhoffLike(net, cfg)
}

// DriftConfig parameterizes the drifting-hotspot workload generator.
type DriftConfig = datagen.DriftConfig

// CorridorConfig parameterizes the corridor/district workload generator.
type CorridorConfig = datagen.CorridorConfig

// GenerateCorridor builds a raw dataset of sessions travelling a cross of
// road corridors between four districts — the workload whose reachable space
// is a small fraction of its bounding box, motivating the geofence backend.
func GenerateCorridor(cfg CorridorConfig) (*RawDataset, error) {
	return datagen.Corridor(cfg)
}

// CorridorFence returns the fence polygons matching the corridor workload
// over the given bounds (districts, arm segments and center), ready for
// NewGeofence.
func CorridorFence(b Bounds) []FencePolygon {
	return datagen.CorridorFence(b)
}

// GenerateDriftingHotspot builds a raw dataset whose dominant hotspot
// translates across the space over time — the workload that defeats
// boot-frozen spatial layouts and motivates online re-discretization.
func GenerateDriftingHotspot(cfg DriftConfig) (*RawDataset, error) {
	return datagen.DriftingHotspot(cfg)
}

// StandardDataset generates one of the named evaluation datasets
// ("tdrive", "oldenburg", "sanjoaquin", "drifting", "corridor") at the given
// population scale, returning the raw dataset and the bounds to grid it
// with.
func StandardDataset(name string, scale float64, seed uint64) (*RawDataset, Bounds, error) {
	spec, ok := datagen.SpecByName(name)
	if !ok {
		return nil, Bounds{}, errUnknownDataset(name)
	}
	raw, err := spec.Generate(scale, seed)
	if err != nil {
		return nil, Bounds{}, err
	}
	return raw, spec.Bounds, nil
}

type errUnknownDataset string

func (e errUnknownDataset) Error() string {
	return "retrasyn: unknown dataset " + string(e) + ` (want "tdrive", "oldenburg", "sanjoaquin", "drifting", or "corridor")`
}

// NewStreamEvents converts a discretized dataset into its per-timestamp
// transition-state event lists — what user devices would report — plus the
// per-timestamp active-user counts. Useful for driving ProcessTimestamp
// manually, as the trafficmonitor example does.
func NewStreamEvents(d *Dataset) (events [][]Event, active []int) {
	s := trajectory.NewStream(d)
	return s.Events, s.Active
}
