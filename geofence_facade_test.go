package retrasyn

import (
	"bytes"
	"testing"
)

// corridorSetup generates the corridor workload and its matching fence —
// the intended deployment of the geofence backend.
func corridorSetup(t *testing.T) (*RawDataset, *Dataset, *Geofence) {
	t.Helper()
	raw, bounds, err := StandardDataset("corridor", 0.04, 13)
	if err != nil {
		t.Fatal(err)
	}
	fence, err := NewGeofence(CorridorFence(bounds))
	if err != nil {
		t.Fatal(err)
	}
	return raw, Discretize(raw, fence), fence
}

func TestFrameworkGeofenceEndToEnd(t *testing.T) {
	_, orig, fence := corridorSetup(t)
	fw, err := New(Options{
		Discretizer: fence,
		Epsilon:     1.0,
		Window:      10,
		Lambda:      orig.Stats().AvgLength,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, stats, err := fw.Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 {
		t.Fatal("no collection rounds")
	}
	if err := syn.Validate(fence, true); err != nil {
		t.Fatalf("geofence release violates reachability: %v", err)
	}
}

func TestFrameworkGeofenceSharded(t *testing.T) {
	_, orig, fence := corridorSetup(t)
	fw, err := New(Options{
		Discretizer: fence,
		Epsilon:     1.0,
		Window:      10,
		Lambda:      orig.Stats().AvgLength,
		Shards:      3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, _, err := fw.Run(orig)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Validate(fence, true); err != nil {
		t.Fatalf("sharded geofence release violates reachability: %v", err)
	}
}

// TestFrameworkGeofenceCheckpointRoundTrip pins the facade checkpoint cycle
// on the polygonal backend: snapshot mid-stream, encode/decode, restore with
// the same options, and the resumed release matches the uninterrupted one
// cell for cell.
func TestFrameworkGeofenceCheckpointRoundTrip(t *testing.T) {
	_, orig, fence := corridorSetup(t)
	opts := Options{
		Discretizer: fence,
		Epsilon:     1.0,
		Window:      10,
		Lambda:      orig.Stats().AvgLength,
		Seed:        7,
	}
	run := func(fw *Framework, from, to int, events [][]Event, active []int) {
		for ts := from; ts < to; ts++ {
			if err := fw.ProcessTimestamp(events[ts], active[ts]); err != nil {
				t.Fatal(err)
			}
		}
	}
	events, active := datasetEvents(orig)

	full, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	run(full, 0, orig.T, events, active)
	want := full.Synthetic("fence")

	half := orig.T / 2
	donor, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	run(donor, 0, half, events, active)
	cp, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Restore(opts, decoded)
	if err != nil {
		t.Fatal(err)
	}
	run(resumed, half, orig.T, events, active)
	got := resumed.Synthetic("fence")
	if len(got.Trajs) != len(want.Trajs) {
		t.Fatalf("resumed release has %d streams, want %d", len(got.Trajs), len(want.Trajs))
	}
	for i := range got.Trajs {
		if got.Trajs[i].Start != want.Trajs[i].Start || len(got.Trajs[i].Cells) != len(want.Trajs[i].Cells) {
			t.Fatalf("stream %d differs after restore", i)
		}
		for j := range got.Trajs[i].Cells {
			if got.Trajs[i].Cells[j] != want.Trajs[i].Cells[j] {
				t.Fatalf("stream %d cell %d differs after restore", i, j)
			}
		}
	}
}

// TestFrameworkGeofenceRelayout migrates a live geofenced framework onto a
// quadtree grown from its own released stream — the Overlapper
// generalization working end to end through the facade.
func TestFrameworkGeofenceRelayout(t *testing.T) {
	raw, orig, fence := corridorSetup(t)
	fw, err := New(Options{
		Discretizer: fence,
		Epsilon:     1.0,
		Window:      10,
		Lambda:      orig.Stats().AvgLength,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := orig.T / 2
	events, active := datasetEvents(orig)
	for ts := 0; ts < half; ts++ {
		if err := fw.ProcessTimestamp(events[ts], active[ts]); err != nil {
			t.Fatal(err)
		}
	}
	qt, err := NewQuadtree(fence.Bounds(), DensitySketch(raw), QuadtreeOptions{MaxLeaves: fence.NumCells()})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Relayout(qt); err != nil {
		t.Fatalf("fence→quadtree relayout failed: %v", err)
	}
	if fw.LayoutGeneration() != 1 || fw.Space().Fingerprint() != qt.Fingerprint() {
		t.Fatalf("framework did not adopt the quadtree (gen %d)", fw.LayoutGeneration())
	}
	// Keep processing on the new layout with re-discretized events.
	requant := Discretize(raw, qt)
	ev2, ac2 := datasetEvents(requant)
	for ts := half; ts < requant.T; ts++ {
		if err := fw.ProcessTimestamp(ev2[ts], ac2[ts]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Synthetic("migrated").Validate(qt, false); err != nil {
		t.Fatalf("post-migration release invalid: %v", err)
	}
}

// TestFrameworkGeofenceAdaptive runs online re-discretization from a
// geofence boot layout: the released stream is sketched through the
// polygonal spread path and rebuilt quadtrees migrate the framework off the
// fence when the workload justifies it.
func TestFrameworkGeofenceAdaptive(t *testing.T) {
	raw, orig, fence := corridorSetup(t)
	fw, err := New(Options{
		Discretizer:       fence,
		Epsilon:           1.0,
		Window:            10,
		Lambda:            orig.Stats().AvgLength,
		RediscretizeEvery: 2,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	syn, _, err := fw.RunAdaptive(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Validate(fw.Space(), false); err != nil {
		t.Fatalf("adaptive geofence release invalid: %v", err)
	}
}
